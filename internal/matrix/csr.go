package matrix

// CSR is a compressed sparse row matrix: row i's entries live at
// positions rowPtr[i]..rowPtr[i+1] of colIdx/vals, with colIdx sorted
// ascending and no duplicates. CSR gives O(1) access to a row's
// neighbours — the natural layout for out-edge adjacency.
type CSR struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	vals       []float64
}

// Dims returns the row and column counts.
func (m *CSR) Dims() (r, c int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// Row returns the column indices and values of row i. The slices alias
// internal storage and must not be mutated.
func (m *CSR) Row(i int) (cols []int32, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RowNNZ returns the number of entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.rowPtr[i+1] - m.rowPtr[i]) }

// At returns the element at (i, j) by binary search within row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.colIdx[mid] == int32(j):
			return m.vals[mid]
		case m.colIdx[mid] < int32(j):
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// MatVec computes dst = M · x.
func (m *CSR) MatVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic("matrix: CSR MatVec dimension mismatch")
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.vals[p] * x[m.colIdx[p]]
		}
		dst[i] = s
	}
}

// TMatVec computes dst = Mᵀ · x (scatter form).
func (m *CSR) TMatVec(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic("matrix: CSR TMatVec dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			dst[m.colIdx[p]] += m.vals[p] * xi
		}
	}
}

// ToDense materialises the matrix densely.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			d.data[i*d.cols+int(m.colIdx[p])] = m.vals[p]
		}
	}
	return d
}

// Transpose returns Mᵀ in CSR form (equivalent to re-interpreting M as CSC).
func (m *CSR) Transpose() *CSR {
	coo := NewCOO(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			coo.Add(int(m.colIdx[p]), i, m.vals[p])
		}
	}
	return coo.ToCSR()
}

// sortAndDedup sorts each row's columns and merges duplicates by summing.
func (m *CSR) sortAndDedup() {
	out := 0
	newPtr := make([]int32, m.rows+1)
	for i := 0; i < m.rows; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		sortIdxVal(m.colIdx, m.vals, lo, hi)
		start := out
		for p := lo; p < hi; p++ {
			if out > start && m.colIdx[out-1] == m.colIdx[p] {
				m.vals[out-1] += m.vals[p]
			} else {
				m.colIdx[out] = m.colIdx[p]
				m.vals[out] = m.vals[p]
				out++
			}
		}
		newPtr[i+1] = int32(out)
	}
	m.rowPtr = newPtr
	m.colIdx = m.colIdx[:out]
	m.vals = m.vals[:out]
}
