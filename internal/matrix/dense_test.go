package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasic(t *testing.T) {
	d := NewDense(2, 3)
	r, c := d.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("Dims = (%d,%d)", r, c)
	}
	d.Set(1, 2, 4.5)
	if d.At(1, 2) != 4.5 {
		t.Fatal("At after Set wrong")
	}
	if d.At(0, 0) != 0 {
		t.Fatal("fresh element not zero")
	}
}

func TestDenseFromRows(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	if d.At(0, 1) != 2 || d.At(1, 0) != 3 {
		t.Fatal("DenseFromRows layout wrong")
	}
}

func TestDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DenseFromRows([][]float64{{1, 2}, {3}})
}

func TestDenseMatVec(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := make([]float64, 3)
	d.MatVec(dst, []float64{1, 10})
	want := []float64{21, 43, 65}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MatVec = %v, want %v", dst, want)
		}
	}
}

func TestDenseTMatVec(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := make([]float64, 2)
	d.TMatVec(dst, []float64{1, 1, 1})
	if dst[0] != 9 || dst[1] != 12 {
		t.Fatalf("TMatVec = %v, want [9 12]", dst)
	}
}

func TestDenseMulIdentity(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	if !d.Mul(Identity(2)).Equal(d) || !Identity(2).Mul(d).Equal(d) {
		t.Fatal("multiplication by identity changed matrix")
	}
}

func TestDenseMul(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := DenseFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := DenseFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Fatalf("Mul =\n%v want\n%v", got, want)
	}
}

func TestDenseAddTranspose(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	sum := a.Add(a)
	if sum.At(1, 2) != 12 {
		t.Fatal("Add wrong")
	}
	at := a.Transpose()
	r, c := at.Dims()
	if r != 3 || c != 2 || at.At(2, 1) != 6 || at.At(0, 0) != 1 {
		t.Fatal("Transpose wrong")
	}
	if !at.Transpose().Equal(a) {
		t.Fatal("double transpose not identity")
	}
}

func TestDensePow(t *testing.T) {
	// Nilpotent strictly-upper-triangular matrix.
	a := DenseFromRows([][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}})
	if !a.Pow(0).Equal(Identity(3)) {
		t.Fatal("Pow(0) != I")
	}
	if !a.Pow(1).Equal(a) {
		t.Fatal("Pow(1) != A")
	}
	if a.Pow(2).At(0, 2) != 1 {
		t.Fatal("Pow(2) wrong")
	}
	if !a.Pow(3).IsZero() {
		t.Fatal("nilpotent matrix cube not zero")
	}
}

func TestDensePowMatchesRepeatedMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, float64(rng.Intn(3)))
			}
		}
		k := rng.Intn(5)
		want := Identity(n)
		for i := 0; i < k; i++ {
			want = want.Mul(a)
		}
		return a.Pow(k).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseNNZIsZero(t *testing.T) {
	d := NewDense(2, 2)
	if !d.IsZero() || d.NNZ() != 0 {
		t.Fatal("fresh matrix should be zero")
	}
	d.Set(0, 1, 3)
	if d.IsZero() || d.NNZ() != 1 {
		t.Fatal("NNZ/IsZero wrong after Set")
	}
}

func TestDenseString(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 0}, {0, 2}})
	if got, want := d.String(), "[1 0]\n[0 2]\n"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestDenseMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}
