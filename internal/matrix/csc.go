package matrix

// CSC is a compressed sparse column matrix: column j's entries live at
// positions colPtr[j]..colPtr[j+1] of rowIdx/vals, with rowIdx sorted
// ascending and no duplicates. The paper's Theorem 6 analyses Algorithm 2
// over CSC diagonal blocks; the gaxpy kernel here is the 2·nnz-flop
// operation cited in its proof.
type CSC struct {
	rows, cols int
	colPtr     []int32
	rowIdx     []int32
	vals       []float64
}

// Dims returns the row and column counts.
func (m *CSC) Dims() (r, c int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.vals) }

// Col returns the row indices and values of column j. The slices alias
// internal storage and must not be mutated.
func (m *CSC) Col(j int) (rows []int32, vals []float64) {
	lo, hi := m.colPtr[j], m.colPtr[j+1]
	return m.rowIdx[lo:hi], m.vals[lo:hi]
}

// ColNNZ returns the number of entries in column j.
func (m *CSC) ColNNZ(j int) int { return int(m.colPtr[j+1] - m.colPtr[j]) }

// At returns the element at (i, j) by binary search within column j.
func (m *CSC) At(i, j int) float64 {
	lo, hi := int(m.colPtr[j]), int(m.colPtr[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.rowIdx[mid] == int32(i):
			return m.vals[mid]
		case m.rowIdx[mid] < int32(i):
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Gaxpy accumulates dst += M · x, the CSC-native kernel (column scaling
// and scatter), costing 2·nnz flops as in the paper's Theorem 6.
func (m *CSC) Gaxpy(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic("matrix: CSC Gaxpy dimension mismatch")
	}
	for j := 0; j < m.cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.colPtr[j]; p < m.colPtr[j+1]; p++ {
			dst[m.rowIdx[p]] += m.vals[p] * xj
		}
	}
}

// MatVec computes dst = M · x.
func (m *CSC) MatVec(dst, x []float64) {
	for i := range dst {
		dst[i] = 0
	}
	m.Gaxpy(dst, x)
}

// TMatVec computes dst = Mᵀ · x. In CSC, column j of M is row j of Mᵀ,
// so this is a gather: dst[j] = Σ_p vals[p]·x[rowIdx[p]].
func (m *CSC) TMatVec(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic("matrix: CSC TMatVec dimension mismatch")
	}
	for j := 0; j < m.cols; j++ {
		var s float64
		for p := m.colPtr[j]; p < m.colPtr[j+1]; p++ {
			s += m.vals[p] * x[m.rowIdx[p]]
		}
		dst[j] = s
	}
}

// ColEmpty reports whether column j has no entries. Checking column
// emptiness is the O(1) primitive behind the paper's ⊙ condition
// "(A[t])ᵀ b ≠ 0".
func (m *CSC) ColEmpty(j int) bool { return m.colPtr[j] == m.colPtr[j+1] }

// ToDense materialises the matrix densely.
func (m *CSC) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for j := 0; j < m.cols; j++ {
		for p := m.colPtr[j]; p < m.colPtr[j+1]; p++ {
			d.data[int(m.rowIdx[p])*d.cols+j] = m.vals[p]
		}
	}
	return d
}

// ToCSR converts to CSR format.
func (m *CSC) ToCSR() *CSR {
	coo := NewCOO(m.rows, m.cols)
	for j := 0; j < m.cols; j++ {
		for p := m.colPtr[j]; p < m.colPtr[j+1]; p++ {
			coo.Add(int(m.rowIdx[p]), j, m.vals[p])
		}
	}
	return coo.ToCSR()
}

// sortAndDedup sorts each column's rows and merges duplicates by summing.
func (m *CSC) sortAndDedup() {
	out := 0
	newPtr := make([]int32, m.cols+1)
	for j := 0; j < m.cols; j++ {
		lo, hi := int(m.colPtr[j]), int(m.colPtr[j+1])
		sortIdxVal(m.rowIdx, m.vals, lo, hi)
		start := out
		for p := lo; p < hi; p++ {
			if out > start && m.rowIdx[out-1] == m.rowIdx[p] {
				m.vals[out-1] += m.vals[p]
			} else {
				m.rowIdx[out] = m.rowIdx[p]
				m.vals[out] = m.vals[p]
				out++
			}
		}
		newPtr[j+1] = int32(out)
	}
	m.colPtr = newPtr
	m.rowIdx = m.rowIdx[:out]
	m.vals = m.vals[:out]
}
