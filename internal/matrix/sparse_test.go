package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCOO builds a random sparse matrix with possible duplicate entries
// (to exercise the dedup-by-summing paths).
func randomCOO(rng *rand.Rand) *COO {
	r := 1 + rng.Intn(12)
	c := 1 + rng.Intn(12)
	m := NewCOO(r, c)
	nnz := rng.Intn(3 * r * c / 2)
	for k := 0; k < nnz; k++ {
		m.Add(rng.Intn(r), rng.Intn(c), float64(1+rng.Intn(5)))
	}
	return m
}

func TestCOOToDenseSumsDuplicates(t *testing.T) {
	m := NewCOO(2, 2)
	m.Add(0, 1, 2)
	m.Add(0, 1, 3)
	d := m.ToDense()
	if d.At(0, 1) != 5 {
		t.Fatalf("duplicate sum = %g, want 5", d.At(0, 1))
	}
}

func TestCSRDedupAndSort(t *testing.T) {
	m := NewCOO(2, 4)
	m.Add(0, 3, 1)
	m.Add(0, 1, 2)
	m.Add(0, 3, 4)
	m.Add(1, 0, 7)
	csr := m.ToCSR()
	if csr.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after dedup", csr.NNZ())
	}
	cols, vals := csr.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 2 || vals[1] != 5 {
		t.Fatalf("row 0 = (%v, %v)", cols, vals)
	}
	if csr.At(0, 3) != 5 || csr.At(0, 0) != 0 || csr.At(1, 0) != 7 {
		t.Fatal("CSR At wrong")
	}
	if csr.RowNNZ(0) != 2 || csr.RowNNZ(1) != 1 {
		t.Fatal("RowNNZ wrong")
	}
}

func TestCSCDedupAndSort(t *testing.T) {
	m := NewCOO(4, 2)
	m.Add(3, 0, 1)
	m.Add(1, 0, 2)
	m.Add(3, 0, 4)
	m.Add(0, 1, 7)
	csc := m.ToCSC()
	if csc.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after dedup", csc.NNZ())
	}
	rows, vals := csc.Col(0)
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 3 || vals[0] != 2 || vals[1] != 5 {
		t.Fatalf("col 0 = (%v, %v)", rows, vals)
	}
	if csc.At(3, 0) != 5 || csc.At(2, 0) != 0 {
		t.Fatal("CSC At wrong")
	}
	if csc.ColEmpty(0) || csc.ColNNZ(1) != 1 {
		t.Fatal("ColEmpty/ColNNZ wrong")
	}
}

// Property: COO → {CSR, CSC} → Dense all agree with COO → Dense.
func TestSparseConversionsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng)
		want := m.ToDense()
		if !m.ToCSR().ToDense().Equal(want) {
			return false
		}
		if !m.ToCSC().ToDense().Equal(want) {
			return false
		}
		if !m.ToCSC().ToCSR().ToDense().Equal(want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sparse matvec kernels agree with the dense reference.
func TestSparseMatVecAgreesWithDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng)
		r, c := m.Dims()
		dense := m.ToDense()
		csr := m.ToCSR()
		csc := m.ToCSC()

		x := make([]float64, c)
		for i := range x {
			x[i] = float64(rng.Intn(5))
		}
		y := make([]float64, r)
		for i := range y {
			y[i] = float64(rng.Intn(5))
		}

		wantAx := make([]float64, r)
		dense.MatVec(wantAx, x)
		gotAx := make([]float64, r)
		csr.MatVec(gotAx, x)
		if !vecEqual(gotAx, wantAx) {
			return false
		}
		csc.MatVec(gotAx, x)
		if !vecEqual(gotAx, wantAx) {
			return false
		}

		wantATy := make([]float64, c)
		dense.TMatVec(wantATy, y)
		gotATy := make([]float64, c)
		csr.TMatVec(gotATy, y)
		if !vecEqual(gotATy, wantATy) {
			return false
		}
		csc.TMatVec(gotATy, y)
		if !vecEqual(gotATy, wantATy) {
			return false
		}

		// Gaxpy accumulates: dst pre-filled must yield dst + A·x.
		acc := make([]float64, r)
		copy(acc, wantAx)
		csc.Gaxpy(acc, x)
		for i := range acc {
			if acc[i] != 2*wantAx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR transpose is an involution and matches dense transpose.
func TestCSRTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng)
		csr := m.ToCSR()
		if !csr.Transpose().ToDense().Equal(m.ToDense().Transpose()) {
			return false
		}
		return csr.Transpose().Transpose().ToDense().Equal(csr.ToDense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestCSRMatVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 3).ToCSR().MatVec(make([]float64, 2), make([]float64, 2))
}

func TestCSCGaxpyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 3).ToCSC().Gaxpy(make([]float64, 3), make([]float64, 3))
}
