package matrix

import (
	"errors"
	"math"
)

// ErrSingular is returned by Inverse for (numerically) singular matrices.
var ErrSingular = errors.New("matrix: singular matrix")

// Inverse returns D⁻¹ computed by Gauss–Jordan elimination with partial
// pivoting. It backs the resolvent factors (I − αA[t])⁻¹ of the
// Grindrod–Higham dynamic communicability baseline (internal/metrics),
// which the paper cites as related work with a different distance notion.
func (d *Dense) Inverse() (*Dense, error) {
	if d.rows != d.cols {
		return nil, errors.New("matrix: Inverse of non-square matrix")
	}
	n := d.rows
	a := d.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[row][col]| for row ≥ col.
		pivot := col
		best := math.Abs(a.At(col, col))
		for row := col + 1; row < n; row++ {
			if v := math.Abs(a.At(row, col)); v > best {
				best, pivot = v, row
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for row := 0; row < n; row++ {
			if row == col {
				continue
			}
			f := a.At(row, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(row, j, a.At(row, j)-f*a.At(col, j))
				inv.Set(row, j, inv.At(row, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func (d *Dense) swapRows(i, j int) {
	ri := d.data[i*d.cols : (i+1)*d.cols]
	rj := d.data[j*d.cols : (j+1)*d.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Scale returns c·D as a new matrix.
func (d *Dense) Scale(c float64) *Dense {
	out := d.Clone()
	for i := range out.data {
		out.data[i] *= c
	}
	return out
}

// Sub returns D − other as a new matrix.
func (d *Dense) Sub(other *Dense) *Dense {
	if d.rows != other.rows || d.cols != other.cols {
		panic("matrix: Sub dimension mismatch")
	}
	out := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		out.data[i] = v - other.data[i]
	}
	return out
}

// MaxAbs returns the largest absolute element value.
func (d *Dense) MaxAbs() float64 {
	m := 0.0
	for _, v := range d.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
