package matrix

import "sort"

// COO is a coordinate-format sparse matrix builder. Entries may be added
// in any order; duplicates are summed during conversion. COO is the
// assembly format — convert to CSR or CSC for computation.
type COO struct {
	rows, cols int
	ri, ci     []int32
	vals       []float64
}

// NewCOO returns an empty r×c coordinate matrix.
func NewCOO(r, c int) *COO {
	if r < 0 || c < 0 {
		panic("matrix: negative COO dimension")
	}
	return &COO{rows: r, cols: c}
}

// Dims returns the row and column counts.
func (m *COO) Dims() (r, c int) { return m.rows, m.cols }

// NNZ returns the number of stored entries (duplicates counted separately).
func (m *COO) NNZ() int { return len(m.vals) }

// Add appends the entry (i, j) = v. Duplicates accumulate on conversion.
func (m *COO) Add(i, j int, v float64) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic("matrix: COO entry out of range")
	}
	m.ri = append(m.ri, int32(i))
	m.ci = append(m.ci, int32(j))
	m.vals = append(m.vals, v)
}

// ToDense materialises the matrix densely (summing duplicates).
func (m *COO) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for k, v := range m.vals {
		i, j := int(m.ri[k]), int(m.ci[k])
		d.data[i*d.cols+j] += v
	}
	return d
}

// ToCSR converts to compressed sparse row format, summing duplicates and
// sorting column indices within each row.
func (m *COO) ToCSR() *CSR {
	rowPtr := make([]int32, m.rows+1)
	for _, i := range m.ri {
		rowPtr[i+1]++
	}
	for i := 0; i < m.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, len(m.vals))
	vals := make([]float64, len(m.vals))
	next := make([]int32, m.rows)
	copy(next, rowPtr[:m.rows])
	for k := range m.vals {
		i := m.ri[k]
		p := next[i]
		colIdx[p] = m.ci[k]
		vals[p] = m.vals[k]
		next[i] = p + 1
	}
	csr := &CSR{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
	csr.sortAndDedup()
	return csr
}

// ToCSC converts to compressed sparse column format, summing duplicates
// and sorting row indices within each column.
func (m *COO) ToCSC() *CSC {
	colPtr := make([]int32, m.cols+1)
	for _, j := range m.ci {
		colPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		colPtr[j+1] += colPtr[j]
	}
	rowIdx := make([]int32, len(m.vals))
	vals := make([]float64, len(m.vals))
	next := make([]int32, m.cols)
	copy(next, colPtr[:m.cols])
	for k := range m.vals {
		j := m.ci[k]
		p := next[j]
		rowIdx[p] = m.ri[k]
		vals[p] = m.vals[k]
		next[j] = p + 1
	}
	csc := &CSC{rows: m.rows, cols: m.cols, colPtr: colPtr, rowIdx: rowIdx, vals: vals}
	csc.sortAndDedup()
	return csc
}

// sortIdxVal sorts idx[lo:hi] ascending, permuting vals alongside.
func sortIdxVal(idx []int32, vals []float64, lo, hi int) {
	sub := idxValSlice{idx: idx[lo:hi], vals: vals[lo:hi]}
	sort.Sort(sub)
}

type idxValSlice struct {
	idx  []int32
	vals []float64
}

func (s idxValSlice) Len() int           { return len(s.idx) }
func (s idxValSlice) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s idxValSlice) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
