// Package matrix is the sparse linear-algebra substrate for the algebraic
// evolving-graph BFS (Algorithm 2 of Chen & Zhang 2016). It provides
// coordinate (COO) builders, compressed sparse row (CSR) and column (CSC)
// matrices, dense matrices, matrix-vector kernels, and the block
// upper-triangular evolving adjacency matrix A_n with its ⊙ product.
//
// The paper's complexity results are representation-specific: Theorem 5
// analyses the dense representation, Theorem 6 the CSC-blocked one. Both
// are implemented here so the benchmarks can reproduce the comparison.
package matrix

import (
	"fmt"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c dense matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("matrix: negative Dense dimension")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// DenseFromRows builds a Dense from row slices, which must be equal length.
func DenseFromRows(rows [][]float64) *Dense {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	d := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows in DenseFromRows")
		}
		copy(d.data[i*c:(i+1)*c], row)
	}
	return d
}

// Dims returns the row and column counts.
func (d *Dense) Dims() (r, c int) { return d.rows, d.cols }

// At returns the element at (i, j).
func (d *Dense) At(i, j int) float64 {
	d.check(i, j)
	return d.data[i*d.cols+j]
}

// Set assigns the element at (i, j).
func (d *Dense) Set(i, j int, v float64) {
	d.check(i, j)
	d.data[i*d.cols+j] = v
}

func (d *Dense) check(i, j int) {
	if i < 0 || i >= d.rows || j < 0 || j >= d.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, d.rows, d.cols))
	}
}

// MatVec computes dst = D · x. dst must have length rows, x length cols.
func (d *Dense) MatVec(dst, x []float64) {
	if len(x) != d.cols || len(dst) != d.rows {
		panic("matrix: MatVec dimension mismatch")
	}
	for i := 0; i < d.rows; i++ {
		row := d.data[i*d.cols : (i+1)*d.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// TMatVec computes dst = Dᵀ · x. dst must have length cols, x length rows.
func (d *Dense) TMatVec(dst, x []float64) {
	if len(x) != d.rows || len(dst) != d.cols {
		panic("matrix: TMatVec dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < d.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := d.data[i*d.cols : (i+1)*d.cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// Mul returns D · other as a new matrix.
func (d *Dense) Mul(other *Dense) *Dense {
	if d.cols != other.rows {
		panic("matrix: Mul dimension mismatch")
	}
	out := NewDense(d.rows, other.cols)
	for i := 0; i < d.rows; i++ {
		for k := 0; k < d.cols; k++ {
			a := d.data[i*d.cols+k]
			if a == 0 {
				continue
			}
			orow := other.data[k*other.cols : (k+1)*other.cols]
			out2 := out.data[i*out.cols : (i+1)*out.cols]
			for j, b := range orow {
				out2[j] += a * b
			}
		}
	}
	return out
}

// Add returns D + other as a new matrix.
func (d *Dense) Add(other *Dense) *Dense {
	if d.rows != other.rows || d.cols != other.cols {
		panic("matrix: Add dimension mismatch")
	}
	out := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		out.data[i] = v + other.data[i]
	}
	return out
}

// Transpose returns Dᵀ as a new matrix.
func (d *Dense) Transpose() *Dense {
	out := NewDense(d.cols, d.rows)
	for i := 0; i < d.rows; i++ {
		for j := 0; j < d.cols; j++ {
			out.data[j*out.cols+i] = d.data[i*d.cols+j]
		}
	}
	return out
}

// Pow returns D^k for k ≥ 0 (D must be square; D⁰ = I).
func (d *Dense) Pow(k int) *Dense {
	if d.rows != d.cols {
		panic("matrix: Pow of non-square matrix")
	}
	if k < 0 {
		panic("matrix: negative Pow exponent")
	}
	out := Identity(d.rows)
	base := d.Clone()
	for k > 0 {
		if k&1 == 1 {
			out = out.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.data[i*n+i] = 1
	}
	return d
}

// Clone returns an independent copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.rows, d.cols)
	copy(out.data, d.data)
	return out
}

// Equal reports whether two matrices have identical dimensions and
// elements.
func (d *Dense) Equal(other *Dense) bool {
	if d.rows != other.rows || d.cols != other.cols {
		return false
	}
	for i, v := range d.data {
		if v != other.data[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every element is zero.
func (d *Dense) IsZero() bool {
	for _, v := range d.data {
		if v != 0 {
			return false
		}
	}
	return true
}

// NNZ returns the number of nonzero elements.
func (d *Dense) NNZ() int {
	c := 0
	for _, v := range d.data {
		if v != 0 {
			c++
		}
	}
	return c
}

// String renders the matrix for debugging.
func (d *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < d.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < d.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%g", d.data[i*d.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
