package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInverseIdentity(t *testing.T) {
	inv, err := Identity(4).Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(Identity(4)) {
		t.Fatalf("I⁻¹ =\n%v", inv)
	}
}

func TestInverseKnown(t *testing.T) {
	a := DenseFromRows([][]float64{{2, 0}, {0, 4}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := DenseFromRows([][]float64{{0.5, 0}, {0, 0.25}})
	if inv.Sub(want).MaxAbs() > 1e-12 {
		t.Fatalf("inverse =\n%v want\n%v", inv, want)
	}
}

func TestInverseSingular(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); err == nil {
		t.Fatal("singular matrix inverted")
	}
	if _, err := NewDense(2, 3).Inverse(); err == nil {
		t.Fatal("non-square matrix inverted")
	}
}

func TestInverseNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := DenseFromRows([][]float64{{0, 1}, {1, 0}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Mul(a).Sub(Identity(2)).MaxAbs() > 1e-12 {
		t.Fatal("pivoted inverse wrong")
	}
}

// Property: A·A⁻¹ ≈ I for random diagonally dominant matrices.
func TestInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64()-0.5)
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return a.Mul(inv).Sub(Identity(n)).MaxAbs() < 1e-9 &&
			inv.Mul(a).Sub(Identity(n)).MaxAbs() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleSubMaxAbs(t *testing.T) {
	a := DenseFromRows([][]float64{{1, -2}, {3, 4}})
	s := a.Scale(2)
	if s.At(0, 1) != -4 || s.At(1, 1) != 8 {
		t.Fatal("Scale wrong")
	}
	d := s.Sub(a)
	if !d.Equal(a) {
		t.Fatal("Sub wrong")
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %g, want 4", a.MaxAbs())
	}
	if math.Abs(NewDense(2, 2).MaxAbs()) != 0 {
		t.Fatal("zero matrix MaxAbs wrong")
	}
}

func TestSubMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).Sub(NewDense(3, 3))
}
