package matrix

import "repro/internal/ds"

// Block is the block upper-triangular adjacency matrix A_n of an evolving
// graph (Sec. III-C of the paper): an n·N × n·N matrix, where n is the
// number of time stamps and N the number of node slots, whose (ti,ti)
// diagonal blocks are the per-stamp adjacency matrices A[t] and whose
// (ti,tj) off-diagonal blocks (ti < tj) are the causal-edge indicator
// matrices M[ti,tj] — diagonal 0/1 matrices marking nodes active at both
// stamps.
//
// The off-diagonal blocks are never materialised: their action on a block
// vector is the paper's ⊙ product, implemented by masking against the
// per-stamp activity bitsets (OdotMask). This realises the paper's remark
// that "these matrices need never be instantiated for practical
// computations".
//
// When Consecutive is true, only the blocks M[ti,ti+k] with the smallest
// k > 0 such that the node is active at both ends are applied — the
// consecutive-causal-edge ablation. The paper's definition (all pairs
// s < t) corresponds to Consecutive == false.
type Block struct {
	stamps int          // n
	nodes  int          // N
	diag   []*CSC       // per-stamp adjacency A[t], each nodes×nodes
	active []*ds.BitSet // per-stamp active-node sets

	// Consecutive selects the consecutive-only causal-edge ablation.
	Consecutive bool
}

// NewBlock assembles the block matrix from per-stamp adjacency (CSC) and
// activity sets. len(diag) == len(active) == number of stamps; every
// block must be nodes×nodes and every bitset of capacity nodes.
func NewBlock(nodes int, diag []*CSC, active []*ds.BitSet) *Block {
	if len(diag) != len(active) {
		panic("matrix: Block stamp count mismatch")
	}
	for t, d := range diag {
		r, c := d.Dims()
		if r != nodes || c != nodes {
			panic("matrix: Block diagonal block has wrong dimensions")
		}
		if active[t].Len() != nodes {
			panic("matrix: Block activity set has wrong capacity")
		}
	}
	return &Block{stamps: len(diag), nodes: nodes, diag: diag, active: active}
}

// Stamps returns the number of time stamps n.
func (b *Block) Stamps() int { return b.stamps }

// Nodes returns the number of node slots N per stamp.
func (b *Block) Nodes() int { return b.nodes }

// Dim returns the full dimension n·N of the block matrix.
func (b *Block) Dim() int { return b.stamps * b.nodes }

// Diag returns the diagonal block A[t].
func (b *Block) Diag(t int) *CSC { return b.diag[t] }

// Active returns the activity set for stamp t.
func (b *Block) Active(t int) *ds.BitSet { return b.active[t] }

// IsActive reports whether node v is active at stamp t.
func (b *Block) IsActive(v, t int) bool { return b.active[t].Get(v) }

// OdotMask applies (M[ti,tj])ᵀ — equivalently the paper's
// (A[ti])ᵀ ⊙ · — to the stamp-ti slice src, accumulating into the
// stamp-tj slice dst: dst[v] += src[v] for every v active at both
// stamps. This is the causal-edge block action.
func (b *Block) OdotMask(dst, src []float64, ti, tj int) {
	ai, aj := b.active[ti], b.active[tj]
	for v := ai.NextSet(0); v >= 0; v = ai.NextSet(v + 1) {
		if src[v] != 0 && aj.Get(v) {
			dst[v] += src[v]
		}
	}
}

// TMatVec computes dst = A_nᵀ · src over block vectors of length Dim().
// Stamp tj of the result receives (A[tj])ᵀ·src_tj from the diagonal block
// plus the ⊙-masked contributions of every earlier stamp's slice
// (all-pairs mode) or of each node's most recent earlier active stamp
// (consecutive mode).
func (b *Block) TMatVec(dst, src []float64) {
	if len(dst) != b.Dim() || len(src) != b.Dim() {
		panic("matrix: Block TMatVec dimension mismatch")
	}
	n := b.nodes
	for tj := 0; tj < b.stamps; tj++ {
		dj := dst[tj*n : (tj+1)*n]
		sj := src[tj*n : (tj+1)*n]
		b.diag[tj].TMatVec(dj, sj)
		if b.Consecutive {
			b.consecutiveCausal(dst, src, tj)
			continue
		}
		for ti := 0; ti < tj; ti++ {
			b.OdotMask(dj, src[ti*n:(ti+1)*n], ti, tj)
		}
	}
}

// consecutiveCausal adds, for each node v active at tj, the contribution
// of v's latest earlier active stamp — the consecutive-causal ablation.
func (b *Block) consecutiveCausal(dst, src []float64, tj int) {
	n := b.nodes
	dj := dst[tj*n : (tj+1)*n]
	aj := b.active[tj]
	for v := aj.NextSet(0); v >= 0; v = aj.NextSet(v + 1) {
		for ti := tj - 1; ti >= 0; ti-- {
			if b.active[ti].Get(v) {
				if s := src[ti*n+v]; s != 0 {
					dj[v] += s
				}
				break
			}
		}
	}
}

// MatVec computes dst = A_n · src (the un-transposed action, used by
// tests to validate against the dense materialisation).
func (b *Block) MatVec(dst, src []float64) {
	if len(dst) != b.Dim() || len(src) != b.Dim() {
		panic("matrix: Block MatVec dimension mismatch")
	}
	n := b.nodes
	for i := range dst {
		dst[i] = 0
	}
	for ti := 0; ti < b.stamps; ti++ {
		di := dst[ti*n : (ti+1)*n]
		b.diag[ti].Gaxpy(di, src[ti*n:(ti+1)*n])
		if b.Consecutive {
			continue
		}
		for tj := ti + 1; tj < b.stamps; tj++ {
			// (M[ti,tj]) · src_tj adds src_tj[v] to dst_ti[v] for shared-active v.
			b.OdotMask(di, src[tj*n:(tj+1)*n], tj, ti)
		}
	}
	if b.Consecutive {
		for tj := 1; tj < b.stamps; tj++ {
			aj := b.active[tj]
			for v := aj.NextSet(0); v >= 0; v = aj.NextSet(v + 1) {
				for ti := tj - 1; ti >= 0; ti-- {
					if b.active[ti].Get(v) {
						if s := src[tj*n+v]; s != 0 {
							dst[ti*n+v] += s
						}
						break
					}
				}
			}
		}
	}
}

// ToDense materialises the full n·N × n·N matrix M_n (the variant that
// keeps inactive rows/columns; they are structurally zero). Intended for
// tests and small graphs — Theorem 5 territory.
func (b *Block) ToDense() *Dense {
	n := b.nodes
	d := NewDense(b.Dim(), b.Dim())
	for t := 0; t < b.stamps; t++ {
		dense := b.diag[t].ToDense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := dense.At(i, j); v != 0 {
					d.Set(t*n+i, t*n+j, v)
				}
			}
		}
	}
	for ti := 0; ti < b.stamps; ti++ {
		for v := b.active[ti].NextSet(0); v >= 0; v = b.active[ti].NextSet(v + 1) {
			if b.Consecutive {
				for tj := ti + 1; tj < b.stamps; tj++ {
					if b.active[tj].Get(v) {
						d.Set(ti*b.nodes+v, tj*b.nodes+v, 1)
						break
					}
				}
			} else {
				for tj := ti + 1; tj < b.stamps; tj++ {
					if b.active[tj].Get(v) {
						d.Set(ti*b.nodes+v, tj*b.nodes+v, 1)
					}
				}
			}
		}
	}
	return d
}

// CompactActive materialises the adjacency matrix A_n of the static graph
// G = (V, E) from Theorem 1 — only rows/columns of *active* temporal
// nodes, ordered stamp-major then by node id (the order the paper uses
// for its explicit A3 example). It also returns the active temporal nodes
// as (stamp, node) pairs in that order.
func (b *Block) CompactActive() (*Dense, [][2]int) {
	var order [][2]int
	index := make(map[[2]int]int)
	for t := 0; t < b.stamps; t++ {
		for v := b.active[t].NextSet(0); v >= 0; v = b.active[t].NextSet(v + 1) {
			index[[2]int{t, v}] = len(order)
			order = append(order, [2]int{t, v})
		}
	}
	full := b.ToDense()
	d := NewDense(len(order), len(order))
	for a, ta := range order {
		for c, tc := range order {
			if v := full.At(ta[0]*b.nodes+ta[1], tc[0]*b.nodes+tc[1]); v != 0 {
				d.Set(a, c, v)
			}
		}
	}
	return d, order
}

// IsNilpotent reports whether the block matrix is nilpotent, i.e. some
// power A_n^k is zero with k ≤ Dim(). Used to validate Lemma 1
// (acyclic snapshots ⇒ nilpotent A_n) on small graphs.
func (b *Block) IsNilpotent() bool {
	d := b.ToDense()
	n, _ := d.Dims()
	p := d.Clone()
	for k := 1; k <= n; k++ {
		if p.IsZero() {
			return true
		}
		p = p.Mul(d)
	}
	return p.IsZero()
}
