package server

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/components"
	"repro/internal/influence"
	"repro/internal/metrics"
	"repro/internal/rank"
)

// The analytics endpoints: whole-graph computations (one BFS per active
// temporal node, a CELF influence run, a Katz power series) served
// through the versioned result cache. Each endpoint is a decoder
// (request.go) that parses and canonicalises its parameters and forms
// the cache key from the parsed values — "?mode=" and "?mode=allpairs"
// share one entry — over either transport; Server.cached/runCached
// collapses concurrent identical requests and admits the compute
// through the in-flight gate.

// maxListLimit bounds the limit parameter of the size-list endpoints.
const maxListLimit = 1 << 20

// defaultListLimit is the sizes-list cap when limit is absent.
const defaultListLimit = 100

// ComponentsResponse is the wire form of /components/weak and
// /components/strong: the component count and the size of each
// component, largest first, capped by the limit parameter (0 = all).
type ComponentsResponse struct {
	Mode      string `json:"mode,omitempty"`
	MinSize   int    `json:"minSize,omitempty"`
	Count     int    `json:"count"`
	Largest   int    `json:"largestSize"`
	Sizes     []int  `json:"sizes"`
	Truncated bool   `json:"truncated,omitempty"`
}

func (s *Server) componentsWeak(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "components/weak")
}

func decodeComponentsWeak(s *Server, p *params) (string, func() (interface{}, error)) {
	mode := p.mode()
	limit := p.intRange("limit", defaultListLimit, 0, maxListLimit)
	key := fmt.Sprintf("components/weak?mode=%s&limit=%d", modeName(mode), limit)
	return key, func() (interface{}, error) {
		// Weak connectivity is mode-independent, so the maintained
		// partition (internal/inc) answers for both causal modes without
		// touching the graph.
		if mr := p.res; mr != nil && mr.WeakSizes != nil {
			resp := &ComponentsResponse{Mode: modeName(mode), Count: mr.WeakCount, Sizes: []int{}}
			for i, sz := range mr.WeakSizes {
				if i == 0 {
					resp.Largest = sz
				}
				if limit > 0 && i >= limit {
					resp.Truncated = true
					break
				}
				resp.Sizes = append(resp.Sizes, sz)
			}
			return resp, nil
		}
		comps := components.WeakOpts(p.g, components.Options{Mode: mode})
		return componentsResponse(comps, modeName(mode), 0, limit), nil
	}
}

func (s *Server) componentsStrong(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "components/strong")
}

func decodeComponentsStrong(s *Server, p *params) (string, func() (interface{}, error)) {
	minSize := p.intRange("minSize", 2, 1, maxListLimit)
	limit := p.intRange("limit", defaultListLimit, 0, maxListLimit)
	key := fmt.Sprintf("components/strong?minSize=%d&limit=%d", minSize, limit)
	return key, func() (interface{}, error) {
		comps := components.StrongOpts(p.g, minSize, components.Options{})
		return componentsResponse(comps, "", minSize, limit), nil
	}
}

func componentsResponse(comps []components.Component, mode string, minSize, limit int) *ComponentsResponse {
	resp := &ComponentsResponse{Mode: mode, MinSize: minSize, Count: len(comps), Sizes: []int{}}
	for i, c := range comps {
		if i == 0 {
			resp.Largest = len(c)
		}
		if limit > 0 && i >= limit {
			resp.Truncated = true
			break
		}
		resp.Sizes = append(resp.Sizes, len(c))
	}
	return resp
}

// SizeDistributionResponse is the wire form of /components/sizes: the
// out-component size of every active temporal node, sorted descending
// (Def. 7's influence profile), capped by limit (0 = all).
type SizeDistributionResponse struct {
	Mode      string  `json:"mode"`
	Count     int     `json:"count"`
	MaxSize   int     `json:"maxSize"`
	MeanSize  float64 `json:"meanSize"`
	Sizes     []int   `json:"sizes"`
	Truncated bool    `json:"truncated,omitempty"`
}

func (s *Server) componentsSizes(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "components/sizes")
}

func decodeComponentsSizes(s *Server, p *params) (string, func() (interface{}, error)) {
	mode := p.mode()
	limit := p.intRange("limit", defaultListLimit, 0, maxListLimit)
	key := fmt.Sprintf("components/sizes?mode=%s&limit=%d", modeName(mode), limit)
	return key, func() (interface{}, error) {
		sizes := components.SizeDistributionOpts(p.g, components.Options{Mode: mode, Workers: s.cfg.Workers})
		resp := &SizeDistributionResponse{Mode: modeName(mode), Count: len(sizes), Sizes: []int{}}
		var sum int
		for _, sz := range sizes {
			sum += sz
		}
		if len(sizes) > 0 {
			resp.MaxSize = sizes[0]
			resp.MeanSize = float64(sum) / float64(len(sizes))
		}
		if limit > 0 && len(sizes) > limit {
			sizes = sizes[:limit]
			resp.Truncated = true
		}
		resp.Sizes = append(resp.Sizes, sizes...)
		return resp, nil
	}
}

// InfluenceSeedJSON is one greedy selection step of /influence/greedy.
type InfluenceSeedJSON struct {
	Node    int32 `json:"node"`
	Gain    int   `json:"gain"`
	Covered int   `json:"covered"`
}

// InfluenceResponse is the wire form of /influence/greedy.
type InfluenceResponse struct {
	K       int                 `json:"k"`
	Mode    string              `json:"mode"`
	Reverse bool                `json:"reverse"`
	Seeds   []InfluenceSeedJSON `json:"seeds"`
	Covered int                 `json:"covered"`
}

func (s *Server) influenceGreedy(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "influence/greedy")
}

func decodeInfluenceGreedy(s *Server, p *params) (string, func() (interface{}, error)) {
	k := p.intRange("k", 0, 1, p.g.NumNodes())
	mode := p.mode()
	reverse := p.boolean("reverse", false)
	if p.err == nil && p.q.Get("k") == "" {
		p.fail("missing parameter %q", "k")
	}
	key := fmt.Sprintf("influence/greedy?k=%d&mode=%s&reverse=%t", k, modeName(mode), reverse)
	return key, func() (interface{}, error) {
		seeds, err := influence.Greedy(p.g, k, influence.Options{
			Mode: mode, ReverseEdges: reverse, Workers: s.cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		resp := &InfluenceResponse{K: k, Mode: modeName(mode), Reverse: reverse, Seeds: []InfluenceSeedJSON{}}
		for _, seed := range seeds {
			resp.Seeds = append(resp.Seeds, InfluenceSeedJSON{Node: seed.Node, Gain: seed.Gain, Covered: seed.Covered})
			resp.Covered = seed.Covered
		}
		return resp, nil
	}
}

// ClosenessResponse is the wire form of /closeness.
type ClosenessResponse struct {
	Root      TemporalNodeJSON `json:"root"`
	Mode      string           `json:"mode"`
	Closeness float64          `json:"closeness"`
}

func (s *Server) closeness(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "closeness")
}

func decodeCloseness(s *Server, p *params) (string, func() (interface{}, error)) {
	root := p.temporalNode("node", "stamp")
	mode := p.mode()
	key := fmt.Sprintf("closeness?node=%d&stamp=%d&mode=%s", root.Node, root.Stamp, modeName(mode))
	return key, func() (interface{}, error) {
		c, err := metrics.TemporalClosenessOpts(p.g, root, metrics.Options{Mode: mode, Workers: s.cfg.Workers})
		if err != nil {
			return nil, err
		}
		return &ClosenessResponse{Root: tnJSON(p.g, root), Mode: modeName(mode), Closeness: c}, nil
	}
}

// EfficiencyResponse is the wire form of /efficiency.
type EfficiencyResponse struct {
	Mode              string  `json:"mode"`
	Efficiency        float64 `json:"efficiency"`
	ReachableFraction float64 `json:"reachableFraction"`
	MeanDistance      float64 `json:"meanDistance"`
	Diameter          int     `json:"diameter"`
}

func (s *Server) efficiency(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "efficiency")
}

func decodeEfficiency(s *Server, p *params) (string, func() (interface{}, error)) {
	mode := p.mode()
	key := fmt.Sprintf("efficiency?mode=%s", modeName(mode))
	return key, func() (interface{}, error) {
		st := metrics.GlobalEfficiencyOpts(p.g, metrics.Options{Mode: mode, Workers: s.cfg.Workers})
		return &EfficiencyResponse{
			Mode:              modeName(mode),
			Efficiency:        st.Efficiency,
			ReachableFraction: st.ReachableFraction,
			MeanDistance:      st.MeanDistance,
			Diameter:          st.Diameter,
		}, nil
	}
}

// KatzEntry is one ranked temporal node of /katz.
type KatzEntry struct {
	TemporalNodeJSON
	Score float64 `json:"score"`
}

// KatzResponse is the wire form of /katz: the top temporal nodes by
// Katz centrality over the unfolded graph.
type KatzResponse struct {
	Alpha float64     `json:"alpha"`
	Mode  string      `json:"mode"`
	Top   []KatzEntry `json:"top"`
}

func (s *Server) katz(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "katz")
}

func decodeKatz(s *Server, p *params) (string, func() (interface{}, error)) {
	alpha := p.float("alpha", 0.1)
	mode := p.mode()
	top := p.intRange("top", 10, 1, 1000)
	key := fmt.Sprintf("katz?alpha=%g&mode=%s&top=%d", alpha, modeName(mode), top)
	return key, func() (interface{}, error) {
		// The maintained Katz vector (internal/inc) answers directly
		// when it was maintained at the requested alpha; other alphas —
		// or a diverged maintained series — fall back to the verbatim
		// power-series recompute.
		scores := []float64(nil)
		if mr := p.res; mr != nil && alpha == mr.KatzAlpha {
			scores = mr.KatzScores(mode)
		}
		if scores == nil {
			var err error
			scores, err = rank.TemporalKatz(p.g, rank.KatzOptions{Alpha: alpha, Mode: mode})
			if err != nil {
				return nil, err
			}
		}
		active := p.g.ActiveTemporalNodes()
		sort.SliceStable(active, func(i, j int) bool {
			si := scores[p.g.TemporalNodeID(active[i])]
			sj := scores[p.g.TemporalNodeID(active[j])]
			return si > sj
		})
		if top < len(active) {
			active = active[:top]
		}
		resp := &KatzResponse{Alpha: alpha, Mode: modeName(mode), Top: []KatzEntry{}}
		for _, tn := range active {
			resp.Top = append(resp.Top, KatzEntry{
				TemporalNodeJSON: tnJSON(p.g, tn),
				Score:            scores[p.g.TemporalNodeID(tn)],
			})
		}
		return resp, nil
	}
}
