// Cross-transport equivalence suite (DESIGN.md §15): every cached
// analytics query must decode to a deep-equal result over HTTP JSON
// and the EGWP binary protocol, AND share one qcache entry — the
// second transport to ask must observe a cache hit, whichever order
// the transports ask in. The suite lives in package server_test
// because it drives the server through egclient, which itself imports
// this package.
package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"repro/egclient"
	"repro/internal/egraph"
	"repro/internal/inc"
	"repro/internal/ingest"
	"repro/internal/server"
)

// attachFastIngest wires a WAL-less ingest log that folds after every
// batch, so an accepted event becomes a published revision promptly.
func attachFastIngest(t *testing.T, srv *server.Server) {
	t.Helper()
	lg, err := ingest.New(srv, ingest.Config{
		CompactEvery:    1,
		CompactInterval: time.Hour,
		Logf:            func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	srv.AttachIngest(lg)
}

// dualServer is one Server exposed over both transports.
type dualServer struct {
	s    *server.Server
	http *egclient.Client
	wire *egclient.Client
}

// newDualServer starts srv on an httptest listener and a wire
// listener, returning a client per transport. Cleanup tears both down.
func newDualServer(t *testing.T, srv *server.Server) *dualServer {
	t.Helper()
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("wire listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.ServeWire(l)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	wc, err := egclient.DialWire(ctx, l.Addr().String())
	if err != nil {
		t.Fatalf("DialWire: %v", err)
	}
	t.Cleanup(func() { wc.Close() })
	return &dualServer{s: srv, http: egclient.NewHTTP(hs.URL, egclient.HTTPOptions{}), wire: wc}
}

// denseGraph builds a graph rich enough that every cached endpoint has
// non-trivial output: 6 nodes, 2 stamps, cross-stamp structure, one
// strongly connected pair.
func denseGraph() *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 2, 10)
	b.AddEdge(2, 0, 10) // SCC {0,1,2} at stamp 0
	b.AddEdge(3, 4, 10)
	b.AddEdge(0, 1, 20)
	b.AddEdge(1, 3, 20)
	b.AddEdge(4, 5, 20)
	return b.Build()
}

// equivalenceQueries is every cached endpoint with representative
// parameter sets, including pairs that only canonicalisation makes
// equal (explicit default vs omitted).
var equivalenceQueries = []struct {
	name     string
	endpoint string
	params   url.Values
}{
	{"weak-default", "components/weak", nil},
	{"weak-consecutive", "components/weak", url.Values{"mode": {"consecutive"}}},
	{"strong-default", "components/strong", nil},
	{"strong-min1", "components/strong", url.Values{"minSize": {"1"}, "limit": {"4"}}},
	{"sizes", "components/sizes", url.Values{"limit": {"3"}}},
	{"influence", "influence/greedy", url.Values{"k": {"2"}}},
	{"closeness", "closeness", url.Values{"node": {"0"}, "stamp": {"0"}}},
	{"efficiency", "efficiency", nil},
	{"katz", "katz", url.Values{"alpha": {"0.1"}, "top": {"4"}}},
}

// queryJSON issues one query through a client and decodes the body
// generically, so deep-equality compares the exact JSON structure the
// transport delivered rather than a typed projection of it.
func queryJSON(t *testing.T, c *egclient.Client, endpoint string, params url.Values) (map[string]interface{}, egclient.Meta) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var body map[string]interface{}
	meta, err := c.Query(ctx, endpoint, params, &body)
	if err != nil {
		t.Fatalf("query %s %v: %v", endpoint, params, err)
	}
	return body, meta
}

// TestCrossTransportEquivalence drives every cached endpoint through
// both transports in both orders: deep-equal bodies, and the second
// transport must hit the entry the first one computed — proof the two
// wire forms funnel into one canonical cache key.
func TestCrossTransportEquivalence(t *testing.T) {
	for _, order := range []struct {
		name          string
		first, second func(d *dualServer) *egclient.Client
	}{
		{"http-then-wire", func(d *dualServer) *egclient.Client { return d.http }, func(d *dualServer) *egclient.Client { return d.wire }},
		{"wire-then-http", func(d *dualServer) *egclient.Client { return d.wire }, func(d *dualServer) *egclient.Client { return d.http }},
	} {
		t.Run(order.name, func(t *testing.T) {
			d := newDualServer(t, server.New(denseGraph(), server.Config{}))
			for _, q := range equivalenceQueries {
				t.Run(q.name, func(t *testing.T) {
					b1, m1 := queryJSON(t, order.first(d), q.endpoint, q.params)
					b2, m2 := queryJSON(t, order.second(d), q.endpoint, q.params)
					if !reflect.DeepEqual(b1, b2) {
						t.Fatalf("transports disagree on %s %v:\n first: %#v\nsecond: %#v", q.endpoint, q.params, b1, b2)
					}
					if m1.Cache != "miss" {
						t.Fatalf("first transport: X-Cache = %q, want miss", m1.Cache)
					}
					if m2.Cache != "hit" {
						t.Fatalf("second transport: X-Cache = %q, want hit (shared qcache entry)", m2.Cache)
					}
					if m1.Revision != m2.Revision {
						t.Fatalf("revisions diverge: %d vs %d", m1.Revision, m2.Revision)
					}
				})
			}
		})
	}
}

// TestCanonicalKeyAcrossTransports asserts that parameter spellings
// that canonicalise identically share an entry across transports:
// HTTP asking with the explicit default and wire asking with no
// parameters must collide on one cache key.
func TestCanonicalKeyAcrossTransports(t *testing.T) {
	d := newDualServer(t, server.New(denseGraph(), server.Config{}))
	_, m1 := queryJSON(t, d.http, "components/weak", url.Values{"mode": {"allpairs"}})
	if m1.Cache != "miss" {
		t.Fatalf("priming query: X-Cache = %q, want miss", m1.Cache)
	}
	_, m2 := queryJSON(t, d.wire, "components/weak", nil)
	if m2.Cache != "hit" {
		t.Fatalf("wire query with omitted default: X-Cache = %q, want hit", m2.Cache)
	}
}

// TestErrorCodeParity issues the same failing requests over both
// transports and asserts both produce a *RemoteError with the same
// transport-neutral code and a non-empty message — the 1:1 mapping the
// envelope satellite promises.
func TestErrorCodeParity(t *testing.T) {
	d := newDualServer(t, server.New(denseGraph(), server.Config{}))
	cases := []struct {
		name     string
		endpoint string
		params   url.Values
		want     egclient.Code
	}{
		{"missing-k", "influence/greedy", nil, egclient.CodeBadRequest},
		{"bad-mode", "components/weak", url.Values{"mode": {"bogus"}}, egclient.CodeBadRequest},
		{"inactive-node", "closeness", url.Values{"node": {"5"}, "stamp": {"0"}}, egclient.CodeNotFound},
		{"unknown-endpoint", "no/such/endpoint", nil, egclient.CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var codes [2]egclient.Code
			var msgs [2]string
			for i, c := range []*egclient.Client{d.http, d.wire} {
				_, err := c.Query(ctx, tc.endpoint, tc.params, nil)
				var re *egclient.RemoteError
				if !errors.As(err, &re) {
					t.Fatalf("client %d: error %v (%T), want *RemoteError", i, err, err)
				}
				codes[i], msgs[i] = re.Code, re.Message
			}
			if codes[0] != codes[1] {
				t.Fatalf("codes diverge across transports: http=%v wire=%v", codes[0], codes[1])
			}
			if codes[0] != tc.want {
				t.Fatalf("code = %v, want %v", codes[0], tc.want)
			}
			if msgs[0] == "" || msgs[1] == "" {
				t.Fatalf("empty error message: http=%q wire=%q", msgs[0], msgs[1])
			}
		})
	}
}

// TestWireQueryAcrossSwap pins that a wire query pins its snapshot era
// like an HTTP request: answers carry the revision they were computed
// on, and a swap invalidates (or carries) entries exactly as the HTTP
// face observes.
func TestWireQueryAcrossSwap(t *testing.T) {
	g := denseGraph()
	m := inc.New(inc.Config{})
	srv := server.New(g, server.Config{})
	srv.PublishAnalytics(m.Prime(g))
	d := newDualServer(t, srv)

	_, m1 := queryJSON(t, d.wire, "components/weak", nil)
	if m1.Revision != 0 {
		t.Fatalf("pre-swap revision = %d, want 0", m1.Revision)
	}
	delta := []egraph.ArcDelta{{U: 5, V: 0, T: 20, W: 1}}
	ng := egraph.Patch(g, delta)
	srv.ReplaceGraphWithAnalytics(ng, m.Apply(g, ng, delta))

	b2, m2 := queryJSON(t, d.wire, "components/weak", nil)
	if m2.Revision != 1 {
		t.Fatalf("post-swap revision = %d, want 1", m2.Revision)
	}
	b3, m3 := queryJSON(t, d.http, "components/weak", nil)
	if !reflect.DeepEqual(b2, b3) {
		t.Fatalf("post-swap transports disagree:\n wire: %#v\n http: %#v", b2, b3)
	}
	if m3.Cache != "carried" {
		t.Fatalf("HTTP read of a carried-over entry: X-Cache = %q, want carried", m3.Cache)
	}
}

// TestFeedResumeAcrossSwap is the change-feed durability contract: a
// subscriber that disconnects mid-stream resubscribes with its cursor
// and receives exactly the revisions it missed, with no gap event,
// across real revision swaps.
func TestFeedResumeAcrossSwap(t *testing.T) {
	g := denseGraph()
	srv := server.New(g, server.Config{})
	d := newDualServer(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sub, err := d.wire.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindRevision})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	cur := g
	swapOnce := func() {
		delta := []egraph.ArcDelta{{U: 0, V: 5, T: 10, W: 1}}
		ng := egraph.Patch(cur, delta)
		srv.ReplaceGraph(ng)
		cur = ng
	}
	swapOnce()
	swapOnce()
	for want := uint64(1); want <= 2; want++ {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if ev.Kind != egclient.KindRevision || ev.Revision != want {
			t.Fatalf("event = %+v, want revision %d", ev, want)
		}
	}
	cursor := sub.Cursor()
	if cursor != 2 {
		t.Fatalf("cursor = %d, want 2", cursor)
	}
	sub.Close()

	// Two more swaps land while nobody is listening.
	swapOnce()
	swapOnce()

	// Resume — over a brand-new connection, as a reconnecting client
	// would — and receive exactly revisions 3 and 4.
	wc2, err := egclient.DialWire(ctx, wireAddr(t, srv))
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer wc2.Close()
	sub2, err := wc2.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindRevision, Cursor: cursor})
	if err != nil {
		t.Fatalf("resubscribe: %v", err)
	}
	defer sub2.Close()
	for want := uint64(3); want <= 4; want++ {
		ev, err := sub2.Next(ctx)
		if err != nil {
			t.Fatalf("resumed next: %v", err)
		}
		if ev.Kind == egclient.KindGap {
			t.Fatalf("gap event on resume within ring retention: %+v", ev)
		}
		if ev.Revision != want {
			t.Fatalf("resumed revision = %d, want %d", ev.Revision, want)
		}
	}
}

// wireAddr spins one extra wire listener for srv and returns its
// address — used by tests that need a second, independent connection.
func wireAddr(t *testing.T, srv *server.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("wire listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.ServeWire(l)
	return l.Addr().String()
}

// TestWireIngestToFeedVisibility exercises the full push loop the PR
// exists for: a batch ingested over the binary transport becomes a
// pushed revision event, with no polling anywhere.
func TestWireIngestToFeedVisibility(t *testing.T) {
	g := denseGraph()
	srv := server.New(g, server.Config{})
	d := newDualServer(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	attachFastIngest(t, srv)

	sub, err := d.wire.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindRevision, Cursor: egclient.CursorLive})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()

	acc, err := d.wire.IngestArcs(ctx, []egclient.Event{{Op: egclient.AddArc, U: 0, V: 5, T: 10}})
	if err != nil {
		t.Fatalf("wire ingest: %v", err)
	}
	if acc.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", acc.Accepted)
	}
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if ev.Kind != egclient.KindRevision || ev.Revision == 0 {
		t.Fatalf("event = %+v, want a revision event", ev)
	}
}

// TestIngestErrorParity asserts the ingest error surface matches
// across transports: an oversized batch and an unattached write path
// map to the same codes.
func TestIngestErrorParity(t *testing.T) {
	d := newDualServer(t, server.New(denseGraph(), server.Config{}))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// No ingest log attached: both transports must answer unavailable.
	for i, c := range []*egclient.Client{d.http, d.wire} {
		_, err := c.IngestArcs(ctx, []egclient.Event{{Op: egclient.AddArc, U: 0, V: 1, T: 10}})
		var re *egclient.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("client %d: error %v (%T), want *RemoteError", i, err, err)
		}
		if re.Code != egclient.CodeUnavailable {
			t.Fatalf("client %d: code = %v, want unavailable", i, re.Code)
		}
	}
	// Empty batch: bad request on both, once a write path exists.
	attachFastIngest(t, d.s)
	for i, c := range []*egclient.Client{d.http, d.wire} {
		_, err := c.IngestArcs(ctx, nil)
		var re *egclient.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("client %d: empty batch error %v (%T), want *RemoteError", i, err, err)
		}
		if re.Code != egclient.CodeBadRequest {
			t.Fatalf("client %d: empty batch code = %v, want bad_request", i, re.Code)
		}
	}
}

// TestHTTPPollingEmulation covers the deprecated HTTP Subscribe
// fallback: KindRevision events arrive (late, via polling), other
// kinds are rejected with bad_request.
func TestHTTPPollingEmulation(t *testing.T) {
	g := denseGraph()
	srv := server.New(g, server.Config{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := egclient.NewHTTP(hs.URL, egclient.HTTPOptions{PollInterval: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := c.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindKatz}); err == nil {
		t.Fatalf("HTTP Subscribe(KindKatz) succeeded, want bad_request")
	}

	sub, err := c.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindRevision, Cursor: egclient.CursorLive})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	srv.ReplaceGraph(egraph.Patch(g, []egraph.ArcDelta{{U: 0, V: 5, T: 10, W: 1}}))
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if ev.Kind != egclient.KindRevision || ev.Revision != 1 {
		t.Fatalf("event = %+v, want revision 1", ev)
	}
}

// TestMetricsCountWireTraffic spot-checks the /metrics wire section so
// the counters egload reads are known-live.
func TestMetricsCountWireTraffic(t *testing.T) {
	d := newDualServer(t, server.New(denseGraph(), server.Config{}))
	queryJSON(t, d.wire, "efficiency", nil)
	var mr struct {
		Wire struct {
			Connections int64 `json:"connections"`
			Queries     int64 `json:"queries"`
		} `json:"wire"`
	}
	body, _ := queryJSONRaw(t, d.http, "metrics")
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if mr.Wire.Connections < 1 {
		t.Fatalf("wire connections = %d, want >= 1", mr.Wire.Connections)
	}
	if mr.Wire.Queries < 1 {
		t.Fatalf("wire queries = %d, want >= 1", mr.Wire.Queries)
	}
}

// queryJSONRaw fetches one endpoint returning the raw JSON bytes.
func queryJSONRaw(t *testing.T, c *egclient.Client, endpoint string) ([]byte, egclient.Meta) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var raw json.RawMessage
	meta, err := c.Query(ctx, endpoint, nil, &raw)
	if err != nil {
		t.Fatalf("query %s: %v", endpoint, err)
	}
	return raw, meta
}
