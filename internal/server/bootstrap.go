package server

import (
	"fmt"
	"net/http"
)

// Bootstrap returns the pre-recovery HTTP surface: liveness yes,
// readiness no, everything else 503 with a Retry-After hint. egserve
// mounts it on the listener while ingest.Recover replays the WAL and
// swaps the real Server in once the first graph installs, so load
// balancers and egload -waitReady measure restart-to-ready while
// /healthz reports the process live the whole time.
//
// The 503 carries the same Retry-After contract as the serving-era
// retriable failures (backpressure 429, degraded-mode 503): clients
// treat the value as their backoff floor and retry the same request.
func Bootstrap() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"status":"starting"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"starting","error":"recovering: graph not yet installed"}`)
	})
	return mux
}
