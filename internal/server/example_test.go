package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"repro/internal/egraph"
	"repro/internal/server"
)

// Example documents the HTTP surface cmd/egserve exposes: mount
// server.Handler on any listener and query it with plain GETs. Here the
// paper's Figure 1 graph is served from an in-process test server and
// each endpoint is hit once.
func Example() {
	srv := httptest.NewServer(server.Handler(egraph.Figure1Graph()))
	defer srv.Close()

	get := func(path string, v interface{}) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			panic(err)
		}
	}

	// GET /stats — graph summary.
	var stats server.StatsResponse
	get("/stats", &stats)
	fmt.Printf("stats: %d nodes, %d stamps, %d static edges\n",
		stats.Nodes, stats.Stamps, stats.StaticEdges)

	// GET /bfs?node=N&stamp=S[&mode=allpairs|consecutive][&direction=forward|backward]
	// — Algorithm 1 from (N, S).
	var bfs server.BFSResponse
	get("/bfs?node=0&stamp=0", &bfs)
	fmt.Printf("bfs: %d temporal nodes reached from (0,t1), levels %v\n",
		len(bfs.Reached), bfs.Levels)

	// GET /path?from=N,S&to=N,S — one shortest temporal path.
	var path server.PathResponse
	get("/path?from=0,0&to=2,2", &path)
	fmt.Printf("path: (0,t1) to (2,t3) in %d hops\n", path.Hops)

	// GET /reach?node=N&stamp=S — reachability summary of a root.
	var reach server.ReachResponse
	get("/reach?node=0&stamp=0", &reach)
	fmt.Printf("reach: %d temporal nodes over %d distinct nodes, max dist %d\n",
		reach.TemporalNodes, reach.DistinctNodes, reach.MaxDist)

	// GET /neighbors?node=N&stamp=S — forward neighbours (Def. 5).
	var nbs server.NeighborsResponse
	get("/neighbors?node=0&stamp=0", &nbs)
	fmt.Printf("neighbors: (0,t1) has %d forward neighbours\n", len(nbs.Neighbors))

	// GET /criteria?src=N&dst=N — the four path-optimality criteria.
	var crit server.CriteriaResponse
	get("/criteria?src=0&dst=2", &crit)
	fmt.Printf("criteria: reachable=%v, shortest %d hops, earliest arrival t=%d\n",
		crit.Reachable, crit.ShortestHops, crit.EarliestArrival)

	// GET /components/weak — a cached analytics endpoint: the first
	// request computes (X-Cache: miss), a repeat is served from the
	// versioned result cache (X-Cache: hit).
	var weak server.ComponentsResponse
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/components/weak")
		if err != nil {
			panic(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&weak); err != nil {
			panic(err)
		}
		resp.Body.Close()
		fmt.Printf("weak components: %d (largest %d temporal nodes) — X-Cache: %s\n",
			weak.Count, weak.Largest, resp.Header.Get("X-Cache"))
	}

	// GET /influence/greedy?k=K — greedy seed selection (Sec. V).
	var inf server.InfluenceResponse
	get("/influence/greedy?k=1", &inf)
	fmt.Printf("influence: seed node %d covers %d nodes\n", inf.Seeds[0].Node, inf.Covered)

	// Output:
	// stats: 3 nodes, 3 stamps, 3 static edges
	// bfs: 6 temporal nodes reached from (0,t1), levels [1 2 2 1]
	// path: (0,t1) to (2,t3) in 3 hops
	// reach: 6 temporal nodes over 3 distinct nodes, max dist 3
	// neighbors: (0,t1) has 2 forward neighbours
	// criteria: reachable=true, shortest 2 hops, earliest arrival t=2
	// weak components: 1 (largest 6 temporal nodes) — X-Cache: miss
	// weak components: 1 (largest 6 temporal nodes) — X-Cache: hit
	// influence: seed node 0 covers 3 nodes
}
