package server

import (
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/egraph"
	"repro/internal/temporal"
)

// The seed query endpoints: point lookups answered by a single search.
// They are cheap relative to the analytics layer, their parameter space
// is the whole temporal-node set, and they are already safe for
// unbounded concurrency — so they bypass the result cache and the
// in-flight gate.

// TemporalNodeJSON is the wire form of a temporal node.
type TemporalNodeJSON struct {
	Node  int32 `json:"node"`
	Stamp int32 `json:"stamp"`
	Label int64 `json:"label"`
}

// StatsResponse is the wire form of /stats.
type StatsResponse struct {
	Nodes        int     `json:"nodes"`
	Stamps       int     `json:"stamps"`
	StaticEdges  int     `json:"staticEdges"`
	CausalEdges  int     `json:"causalEdges"`
	ActiveNodes  int     `json:"activeTemporalNodes"`
	Directed     bool    `json:"directed"`
	FirstLabel   int64   `json:"firstLabel"`
	LastLabel    int64   `json:"lastLabel"`
	EdgesByStamp []int   `json:"edgesByStamp"`
	TimeLabels   []int64 `json:"timeLabels"`
	Density      float64 `json:"activeDensity"`
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	g := s.Graph()
	edges := make([]int, g.NumStamps())
	for t := range edges {
		edges[t] = g.SnapshotEdgeCount(t)
	}
	resp := StatsResponse{
		Nodes:        g.NumNodes(),
		Stamps:       g.NumStamps(),
		StaticEdges:  g.StaticEdgeCount(),
		CausalEdges:  g.CausalEdgeCount(egraph.CausalAllPairs),
		ActiveNodes:  g.NumActiveNodes(),
		Directed:     g.Directed(),
		FirstLabel:   g.TimeLabel(0),
		LastLabel:    g.TimeLabel(g.NumStamps() - 1),
		EdgesByStamp: edges,
		TimeLabels:   g.TimeLabels(),
		Density:      float64(g.NumActiveNodes()) / float64(g.NumNodes()*g.NumStamps()),
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// BFSEntry is one reached temporal node in /bfs.
type BFSEntry struct {
	TemporalNodeJSON
	Dist int `json:"dist"`
}

// BFSResponse is the wire form of /bfs.
type BFSResponse struct {
	Root    TemporalNodeJSON `json:"root"`
	Reached []BFSEntry       `json:"reached"`
	Levels  []int            `json:"levels"`
}

func (s *Server) bfs(w http.ResponseWriter, r *http.Request) {
	p := s.params(r)
	root := p.temporalNode("node", "stamp")
	opts := core.Options{Mode: p.mode(), Direction: p.direction()}
	if !s.okParams(w, p) {
		return
	}
	res, err := core.BFS(p.g, root, opts)
	if err != nil {
		s.writeError(w, errStatus(err), err.Error())
		return
	}
	resp := BFSResponse{Root: tnJSON(p.g, root), Levels: res.LevelSizes()}
	res.Visit(func(tn egraph.TemporalNode, d int) bool {
		resp.Reached = append(resp.Reached, BFSEntry{TemporalNodeJSON: tnJSON(p.g, tn), Dist: d})
		return true
	})
	s.writeJSON(w, http.StatusOK, resp)
}

// PathResponse is the wire form of /path.
type PathResponse struct {
	From TemporalNodeJSON   `json:"from"`
	To   TemporalNodeJSON   `json:"to"`
	Hops int                `json:"hops"`
	Path []TemporalNodeJSON `json:"path"`
}

func (s *Server) path(w http.ResponseWriter, r *http.Request) {
	p := s.params(r)
	from := p.pair("from")
	to := p.pair("to")
	mode := p.mode()
	if !s.okParams(w, p) {
		return
	}
	path, err := core.ShortestPath(p.g, from, to, mode)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if path == nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("%v is not reachable from %v", to, from))
		return
	}
	resp := PathResponse{From: tnJSON(p.g, from), To: tnJSON(p.g, to), Hops: path.Hops()}
	for _, tn := range path {
		resp.Path = append(resp.Path, tnJSON(p.g, tn))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ReachResponse is the wire form of /reach.
type ReachResponse struct {
	Root          TemporalNodeJSON `json:"root"`
	TemporalNodes int              `json:"temporalNodes"`
	DistinctNodes int              `json:"distinctNodes"`
	MaxDist       int              `json:"maxDist"`
}

func (s *Server) reach(w http.ResponseWriter, r *http.Request) {
	p := s.params(r)
	root := p.temporalNode("node", "stamp")
	mode := p.mode()
	if !s.okParams(w, p) {
		return
	}
	res, err := core.BFS(p.g, root, core.Options{Mode: mode})
	if err != nil {
		s.writeError(w, errStatus(err), err.Error())
		return
	}
	distinct := make(map[int32]bool)
	res.Visit(func(tn egraph.TemporalNode, _ int) bool {
		distinct[tn.Node] = true
		return true
	})
	s.writeJSON(w, http.StatusOK, ReachResponse{
		Root:          tnJSON(p.g, root),
		TemporalNodes: res.NumReached(),
		DistinctNodes: len(distinct),
		MaxDist:       res.MaxDist(),
	})
}

// NeighborsResponse is the wire form of /neighbors.
type NeighborsResponse struct {
	Of        TemporalNodeJSON   `json:"of"`
	Neighbors []TemporalNodeJSON `json:"neighbors"`
}

func (s *Server) neighbors(w http.ResponseWriter, r *http.Request) {
	p := s.params(r)
	tn := p.temporalNode("node", "stamp")
	mode := p.mode()
	if !s.okParams(w, p) {
		return
	}
	resp := NeighborsResponse{Of: tnJSON(p.g, tn)}
	for _, nb := range core.ForwardNeighbors(p.g, tn, mode) {
		resp.Neighbors = append(resp.Neighbors, tnJSON(p.g, nb))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// CriteriaResponse is the wire form of /criteria.
type CriteriaResponse struct {
	Source          int32 `json:"source"`
	Target          int32 `json:"target"`
	Reachable       bool  `json:"reachable"`
	ShortestHops    int   `json:"shortestHops"`
	EarliestArrival int64 `json:"earliestArrival"`
	LatestDeparture int64 `json:"latestDeparture"`
	FastestDuration int64 `json:"fastestDuration"`
}

func (s *Server) criteria(w http.ResponseWriter, r *http.Request) {
	p := s.params(r)
	src := p.node("src")
	dst := p.node("dst")
	mode := p.mode()
	if !s.okParams(w, p) {
		return
	}
	sum, err := temporal.Compare(p.g, src, dst, mode)
	if err != nil {
		s.writeError(w, errStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, CriteriaResponse{
		Source:          sum.Source,
		Target:          sum.Target,
		Reachable:       sum.Reachable,
		ShortestHops:    sum.ShortestHops,
		EarliestArrival: sum.EarliestArrival,
		LatestDeparture: sum.LatestDeparture,
		FastestDuration: sum.FastestDuration,
	})
}

// wire converts a temporal node to its JSON form under g's time labels.
func tnJSON(g *egraph.IntEvolvingGraph, tn egraph.TemporalNode) TemporalNodeJSON {
	return TemporalNodeJSON{Node: tn.Node, Stamp: tn.Stamp, Label: g.TimeLabel(int(tn.Stamp))}
}
