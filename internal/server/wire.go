package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/wire"
)

// The binary transport: ServeWire speaks the EGWP protocol
// (internal/wire, DESIGN.md §15) on a second listener alongside HTTP.
// Queries dispatch through the same request-decoding layer and
// runCached core as the HTTP handlers — one qcache entry per answer
// across both transports — ingest batches land in the same write path,
// and TSubscribe streams the change feed that replaces
// X-Graph-Revision polling.
//
// Per connection: one reader (this goroutine), one writer goroutine
// owning the socket's write side, a goroutine per in-flight query
// (frames carry correlation ids, so clients pipeline), and a pump
// goroutine per subscription. Backpressure is structural end to end: a
// slow client fills the TCP window, then the writer's queue; a full
// queue stalls subscription pumps between Next calls, so the feed
// ring advances without them and they resume with one Gap event.

// wireOutQueue bounds the per-connection writer queue (frames).
const wireOutQueue = 64

// outFrame is one frame awaiting the connection's writer goroutine.
type outFrame struct {
	typ     uint8
	flags   uint8
	id      uint32
	payload []byte
}

// ServeWire accepts and serves EGWP connections on l until l is
// closed, blocking like http.Server.Serve. Connections drain on their
// own when the listener closes; close the feed hub to stop
// subscription pumps. With Config.Faults armed, the wire.accept site
// drops fresh connections and wire.read / wire.write inject slow or
// dropped socket operations per connection.
func (s *Server) ServeWire(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if err := s.cfg.Faults.Fire(fault.WireAccept); err != nil {
			conn.Close()
			continue
		}
		go s.serveWireConn(conn)
	}
}

// faultConn injects at the socket boundary: a wire.read or wire.write
// fault closes the underlying connection mid-operation — exactly the
// half-written frame a vanishing peer leaves behind — and delay-only
// rules model a slow peer. The zero-delay happy path is one nil check
// per Read/Write.
type faultConn struct {
	net.Conn
	f *fault.Injector
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if err := fc.f.Fire(fault.WireRead); err != nil {
		fc.Conn.Close()
		return 0, err
	}
	return fc.Conn.Read(p)
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if err := fc.f.Fire(fault.WireWrite); err != nil {
		fc.Conn.Close()
		return 0, err
	}
	return fc.Conn.Write(p)
}

func (s *Server) serveWireConn(conn net.Conn) {
	defer conn.Close()
	if s.cfg.Faults != nil {
		conn = &faultConn{Conn: conn, f: s.cfg.Faults}
	}
	s.wireConns.Add(1)
	defer s.wireConns.Add(-1)
	if err := wire.WriteHello(conn); err != nil {
		return
	}
	if err := wire.ReadHello(conn); err != nil {
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Teardown must not depend on the peer: once anything cancels the
	// connection context (writer error, listener shutdown), closing the
	// socket unblocks a reader parked in ReadFrame on a half-open peer
	// and a writer parked in a full TCP window — otherwise those
	// goroutines (and the subscription registry entries their wg holds)
	// leak until the kernel times the connection out.
	stopClose := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopClose()
	out := make(chan outFrame, wireOutQueue)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.wireWriter(ctx, cancel, conn, out)
	}()
	// send enqueues one frame for the writer unless the connection is
	// already going down. Payload ownership passes to the writer.
	send := func(f outFrame) bool {
		select {
		case out <- f:
			return true
		case <-ctx.Done():
			return false
		}
	}

	var wg sync.WaitGroup
	fr := wire.NewReader(conn)
	for {
		frame, err := fr.ReadFrame()
		if err != nil {
			// Clean EOF or a protocol violation either way: stop reading,
			// cancel the workers, let deferred cleanup close the socket.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && ctx.Err() == nil {
				s.cfg.Logf("server: wire connection: %v", err)
			}
			break
		}
		switch frame.Type {
		case wire.TPing:
			send(outFrame{typ: wire.RPong, id: frame.ID})
		case wire.TQuery:
			endpoint, q, err := wire.DecodeQuery(frame.Payload)
			if err != nil {
				send(s.wireError(frame.ID, http.StatusBadRequest, err.Error()))
				continue
			}
			s.wireQueries.Add(1)
			wg.Add(1)
			go func(id uint32, forced bool) {
				defer wg.Done()
				send(s.wireQuery(ctx, id, endpoint, q, forced))
			}(frame.ID, frame.Flags&wire.FlagTrace != 0)
		case wire.TIngest:
			// Ingest stays on the reader goroutine: batches from one
			// connection must reach the WAL in the order they were sent.
			events, err := wire.DecodeIngest(frame.Payload)
			if err != nil {
				send(s.wireError(frame.ID, http.StatusBadRequest, err.Error()))
				continue
			}
			s.wireIngest.Add(1)
			resp, status, msg := s.acceptBatch(events)
			if status != http.StatusAccepted {
				send(s.wireError(frame.ID, status, msg))
				continue
			}
			body, _ := json.Marshal(resp)
			send(outFrame{typ: wire.RResult, flags: wire.CacheNone, id: frame.ID,
				payload: wire.AppendResult(nil, s.Revision(), body)})
		case wire.TSubscribe:
			spec, err := wire.DecodeSubscribe(frame.Payload)
			if err != nil {
				send(s.wireError(frame.ID, http.StatusBadRequest, err.Error()))
				continue
			}
			sub, err := s.hub.Subscribe(spec)
			if err != nil {
				status := http.StatusBadRequest
				if errors.Is(err, feed.ErrHubClosed) {
					status = http.StatusServiceUnavailable
				}
				send(s.wireError(frame.ID, status, err.Error()))
				continue
			}
			send(outFrame{typ: wire.RSubscribed, id: frame.ID,
				payload: wire.AppendResult(nil, s.Revision(), nil)})
			wg.Add(1)
			go func(id uint32) {
				defer wg.Done()
				defer sub.Close()
				for {
					ev, err := sub.Next(ctx)
					if err != nil {
						return
					}
					if !send(outFrame{typ: wire.REvent, id: id, payload: wire.AppendEvent(nil, ev)}) {
						return
					}
					s.wireEvents.Add(1)
					if !ev.At.IsZero() {
						// Publish-to-handoff delivery lag; gap events
						// carry no source epoch and are skipped.
						s.feedLag.Observe(time.Since(ev.At).Nanoseconds())
					}
				}
			}(frame.ID)
		default:
			send(s.wireError(frame.ID, http.StatusBadRequest, "unknown frame type"))
		}
	}
	cancel()
	wg.Wait()
	writerWG.Wait()
}

// wireWriter is the single goroutine owning conn's write side: it
// frames and flushes queued responses, batching flushes while more
// frames are pending.
func (s *Server) wireWriter(ctx context.Context, cancel context.CancelFunc, conn net.Conn, out <-chan outFrame) {
	bw := bufio.NewWriterSize(conn, 1<<16)
	var buf []byte
	for {
		select {
		case f := <-out:
			buf = wire.AppendFrame(buf[:0], f.typ, f.flags, f.id, f.payload)
			if _, err := bw.Write(buf); err != nil {
				cancel()
				return
			}
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					cancel()
					return
				}
			}
		case <-ctx.Done():
			return
		}
	}
}

// budgetParam is the reserved TQuery parameter carrying the client's
// remaining deadline budget in milliseconds — the wire spelling of the
// X-Budget-Ms header. It rides inside the existing query encoding (no
// frame change), is stripped before decoding, and never reaches cache
// keys.
const budgetParam = "_budget_ms"

// wireQuery answers one TQuery: same decoders, same cache, same gate
// as the HTTP path, the same serve-latency histogram (transport
// "wire") and the same trace spans — forced here by the FlagTrace bit
// instead of an X-Trace header. The request pins the current era
// exactly like ServeHTTP does, so graph snapshots it captures stay
// reachable. ctx is the connection context plus the query's declared
// budget (budgetParam), so a torn-down connection or an exhausted
// budget abandons the compute without poisoning collapsed followers.
func (s *Server) wireQuery(ctx context.Context, id uint32, endpoint string, q map[string][]string, forced bool) outFrame {
	start := time.Now()
	outcomeLabel := "error"
	defer func() {
		s.serveLat.With("/"+endpoint, outcomeLabel, "wire").Observe(time.Since(start).Nanoseconds())
	}()
	e := s.pinEra()
	defer s.unpinEra(e)
	tr := s.tracer.Start(forced)
	defer tr.Finish()
	root := tr.Span("serve", obs.RootSpan)
	defer root.End()
	root.Attr("endpoint", endpoint)
	root.Attr("transport", "wire")

	if raw := url.Values(q).Get(budgetParam); raw != "" {
		ms, _ := strconv.ParseInt(raw, 10, 64)
		delete(q, budgetParam)
		var cancel context.CancelFunc
		ctx, cancel = withBudget(ctx, ms)
		defer cancel()
	}

	dec := tr.Span("decode", root)
	p, key, compute, err := s.decodeCached(endpoint, q)
	dec.End()
	if err != nil {
		status := http.StatusBadRequest
		if _, known := cachedDecoders[endpoint]; !known {
			status = http.StatusNotFound
		}
		return s.wireError(id, status, err.Error())
	}
	dec.Attr("key", key)
	root.Attr("revision", strconv.FormatUint(p.rev, 10))

	cacheSp := tr.Span("cache", root)
	val, outcome, err := s.runCached(ctx, p, endpoint, key, traceCompute(tr, cacheSp, compute))
	cacheSp.Attr("outcome", outcome.String())
	cacheSp.End()
	if err != nil {
		return s.wireError(id, errStatus(err), err.Error())
	}
	outcomeLabel = outcome.String()

	enc := tr.Span("encode", root)
	body, err := json.Marshal(val)
	enc.End()
	if err != nil {
		outcomeLabel = "error"
		return s.wireError(id, http.StatusInternalServerError, err.Error())
	}
	return outFrame{
		typ:     wire.RResult,
		flags:   cacheFlag(outcome),
		id:      id,
		payload: wire.AppendResult(nil, p.rev, body),
	}
}

// wireError renders one failure as an RError frame carrying the same
// code the HTTP envelope would: both transports map status 1:1 through
// wire.CodeFromStatus.
func (s *Server) wireError(id uint32, status int, msg string) outFrame {
	return outFrame{
		typ:     wire.RError,
		id:      id,
		payload: wire.AppendError(nil, wire.CodeFromStatus(status), s.Revision(), msg, ""),
	}
}

// cacheFlag is the RResult flags encoding of a cache outcome (the
// binary X-Cache header).
func cacheFlag(o qcache.Outcome) uint8 {
	switch o {
	case qcache.Hit:
		return wire.CacheHit
	case qcache.Collapsed:
		return wire.CacheCollapsed
	case qcache.Carried:
		return wire.CacheCarried
	case qcache.Stale:
		return wire.CacheStale
	default:
		return wire.CacheMiss
	}
}
