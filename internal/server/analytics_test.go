package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/egraph"
	"repro/internal/gen"
	"repro/internal/qcache"
)

// doGet issues one request against h and returns the recorder.
func doGet(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestAnalyticsEndpoints drives every analytics endpoint through its
// happy path and its parameter-validation failures on the paper's
// Figure 1 graph.
func TestAnalyticsEndpoints(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})
	cases := []struct {
		name       string
		url        string
		wantStatus int
		check      func(t *testing.T, body []byte)
	}{
		{"weak ok", "/components/weak", http.StatusOK, func(t *testing.T, body []byte) {
			var resp ComponentsResponse
			mustDecode(t, body, &resp)
			// Figure 1 is fully connected ignoring direction: one weak
			// component holding all 6 active temporal nodes.
			if resp.Count != 1 || resp.Largest != 6 || len(resp.Sizes) != 1 || resp.Sizes[0] != 6 {
				t.Fatalf("weak = %+v", resp)
			}
		}},
		{"weak consecutive", "/components/weak?mode=consecutive&limit=5", http.StatusOK, nil},
		{"weak bad mode", "/components/weak?mode=warp", http.StatusBadRequest, nil},
		{"weak bad limit", "/components/weak?limit=-1", http.StatusBadRequest, nil},

		{"strong ok", "/components/strong", http.StatusOK, func(t *testing.T, body []byte) {
			var resp ComponentsResponse
			mustDecode(t, body, &resp)
			// Directed Figure 1 has no within-stamp cycle: no SCC ≥ 2.
			if resp.Count != 0 || resp.MinSize != 2 {
				t.Fatalf("strong = %+v", resp)
			}
		}},
		{"strong singletons", "/components/strong?minSize=1", http.StatusOK, func(t *testing.T, body []byte) {
			var resp ComponentsResponse
			mustDecode(t, body, &resp)
			if resp.Count != 6 { // every active temporal node
				t.Fatalf("strong minSize=1 = %+v", resp)
			}
		}},
		{"strong bad minSize", "/components/strong?minSize=0", http.StatusBadRequest, nil},

		{"sizes ok", "/components/sizes", http.StatusOK, func(t *testing.T, body []byte) {
			var resp SizeDistributionResponse
			mustDecode(t, body, &resp)
			if resp.Count != 6 || len(resp.Sizes) != 6 {
				t.Fatalf("sizes = %+v", resp)
			}
			// (0, t1) reaches all 6 temporal nodes; sorted descending.
			if resp.MaxSize != 6 || resp.Sizes[0] != 6 {
				t.Fatalf("sizes = %+v, want max 6 first", resp)
			}
			if resp.MeanSize <= 0 {
				t.Fatalf("meanSize = %v, want > 0", resp.MeanSize)
			}
		}},
		{"sizes limit", "/components/sizes?limit=2", http.StatusOK, func(t *testing.T, body []byte) {
			var resp SizeDistributionResponse
			mustDecode(t, body, &resp)
			if resp.Count != 6 || len(resp.Sizes) != 2 || !resp.Truncated {
				t.Fatalf("sizes limit=2 = %+v", resp)
			}
		}},
		{"sizes bad mode", "/components/sizes?mode=x", http.StatusBadRequest, nil},

		{"influence ok", "/influence/greedy?k=2", http.StatusOK, func(t *testing.T, body []byte) {
			var resp InfluenceResponse
			mustDecode(t, body, &resp)
			if resp.K != 2 || len(resp.Seeds) == 0 {
				t.Fatalf("influence = %+v", resp)
			}
			// Node 0 reaches every node in Figure 1: the first seed
			// must cover all 3 distinct nodes.
			if resp.Seeds[0].Node != 0 || resp.Seeds[0].Gain != 3 {
				t.Fatalf("first seed = %+v, want node 0 gain 3", resp.Seeds[0])
			}
			if resp.Covered != 3 {
				t.Fatalf("covered = %d, want 3", resp.Covered)
			}
		}},
		{"influence missing k", "/influence/greedy", http.StatusBadRequest, nil},
		{"influence k too big", "/influence/greedy?k=99", http.StatusBadRequest, nil},
		{"influence bad reverse", "/influence/greedy?k=1&reverse=maybe", http.StatusBadRequest, nil},

		{"closeness ok", "/closeness?node=0&stamp=0", http.StatusOK, func(t *testing.T, body []byte) {
			var resp ClosenessResponse
			mustDecode(t, body, &resp)
			if resp.Closeness <= 0 {
				t.Fatalf("closeness = %+v, want > 0", resp)
			}
			if resp.Root.Node != 0 || resp.Root.Stamp != 0 {
				t.Fatalf("root = %+v", resp.Root)
			}
		}},
		{"closeness inactive root", "/closeness?node=2&stamp=0", http.StatusNotFound, nil},
		{"closeness missing stamp", "/closeness?node=0", http.StatusBadRequest, nil},
		{"closeness node range", "/closeness?node=7&stamp=0", http.StatusBadRequest, nil},

		{"efficiency ok", "/efficiency", http.StatusOK, func(t *testing.T, body []byte) {
			var resp EfficiencyResponse
			mustDecode(t, body, &resp)
			if resp.Efficiency <= 0 || resp.ReachableFraction <= 0 || resp.Diameter <= 0 {
				t.Fatalf("efficiency = %+v", resp)
			}
		}},
		{"efficiency bad mode", "/efficiency?mode=z", http.StatusBadRequest, nil},

		{"katz ok", "/katz?top=5", http.StatusOK, func(t *testing.T, body []byte) {
			var resp KatzResponse
			mustDecode(t, body, &resp)
			if resp.Alpha != 0.1 || len(resp.Top) != 5 {
				t.Fatalf("katz = %+v", resp)
			}
			for i := 1; i < len(resp.Top); i++ {
				if resp.Top[i].Score > resp.Top[i-1].Score {
					t.Fatalf("katz top not sorted: %+v", resp.Top)
				}
			}
		}},
		{"katz bad alpha", "/katz?alpha=-1", http.StatusBadRequest, nil},
		{"katz bad top", "/katz?top=0", http.StatusBadRequest, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doGet(t, srv, tc.url)
			if rec.Code != tc.wantStatus {
				t.Fatalf("GET %s: status %d, want %d (body %s)", tc.url, rec.Code, tc.wantStatus, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("GET %s: Content-Type %q", tc.url, ct)
			}
			if tc.wantStatus != http.StatusOK {
				var e ErrorResponse
				mustDecode(t, rec.Body.Bytes(), &e)
				if e.Error == "" {
					t.Fatalf("GET %s: error body missing: %s", tc.url, rec.Body.String())
				}
				if e.Code == "" {
					t.Fatalf("GET %s: envelope code missing: %s", tc.url, rec.Body.String())
				}
			}
			if tc.check != nil {
				tc.check(t, rec.Body.Bytes())
			}
		})
	}
}

func mustDecode(t *testing.T, body []byte, into interface{}) {
	t.Helper()
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
}

// TestCacheHitMissHeader asserts the X-Cache header tracks cache state
// and that parameter canonicalisation shares entries between equivalent
// spellings.
func TestCacheHitMissHeader(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})
	if got := doGet(t, srv, "/efficiency").Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first /efficiency X-Cache = %q, want miss", got)
	}
	if got := doGet(t, srv, "/efficiency").Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second /efficiency X-Cache = %q, want hit", got)
	}
	// Explicit default mode canonicalises onto the same key.
	if got := doGet(t, srv, "/efficiency?mode=allpairs").Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("/efficiency?mode=allpairs X-Cache = %q, want hit (canonicalised)", got)
	}
	// Different params are a different entry.
	if got := doGet(t, srv, "/efficiency?mode=consecutive").Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("/efficiency?mode=consecutive X-Cache = %q, want miss", got)
	}
	// Uncached endpoints carry no X-Cache header.
	if got := doGet(t, srv, "/stats").Header().Get("X-Cache"); got != "" {
		t.Fatalf("/stats X-Cache = %q, want none", got)
	}
	st := srv.CacheStats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 2 misses 2 hits", st)
	}
}

// TestGraphRevisionInvalidation swaps the served graph and asserts the
// cache refuses the stale answer, the revision is visible in /healthz
// and /stats serves the new graph.
func TestGraphRevisionInvalidation(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})
	var before ComponentsResponse
	rec := doGet(t, srv, "/components/weak")
	mustDecode(t, rec.Body.Bytes(), &before)
	if before.Largest != 6 {
		t.Fatalf("figure 1 weak largest = %d, want 6", before.Largest)
	}
	if got := doGet(t, srv, "/components/weak").Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("pre-swap X-Cache = %q, want hit", got)
	}

	// Swap in a different graph: the three-player intro game.
	if rev := srv.ReplaceGraph(egraph.IntroGameGraph(false)); rev != 1 {
		t.Fatalf("ReplaceGraph revision = %d, want 1", rev)
	}
	rec = doGet(t, srv, "/components/weak")
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("post-swap X-Cache = %q, want miss (revision bumped)", got)
	}
	var after ComponentsResponse
	mustDecode(t, rec.Body.Bytes(), &after)
	if after.Largest == before.Largest {
		t.Fatalf("post-swap weak largest = %d, want a different graph's answer", after.Largest)
	}

	var health HealthResponse
	mustDecode(t, doGet(t, srv, "/healthz").Body.Bytes(), &health)
	if health.GraphRevision != 1 || health.Status != "ok" {
		t.Fatalf("healthz = %+v, want revision 1", health)
	}
}

// TestSingleflightComputesOnce hammers one cold analytics endpoint with
// concurrent identical requests and asserts the cache computed exactly
// once: every response is byte-identical and misses == 1.
func TestSingleflightComputesOnce(t *testing.T) {
	// A graph big enough that the sweep takes real time, so the
	// requests genuinely overlap.
	g := gen.Random(gen.RandomConfig{Nodes: 300, Stamps: 6, Edges: 3000, Directed: true, Seed: 7})
	srv := New(g, Config{})

	const n = 16
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		bodies  = make(map[string]int)
		statusi = make(map[int]int)
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rec := doGet(t, srv, "/components/sizes?limit=0")
			mu.Lock()
			bodies[rec.Body.String()]++
			statusi[rec.Code]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if statusi[http.StatusOK] != n {
		t.Fatalf("statuses = %v, want %d OK", statusi, n)
	}
	if len(bodies) != 1 {
		t.Fatalf("got %d distinct response bodies, want 1", len(bodies))
	}
	st := srv.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 computation for %d concurrent identical requests", st.Misses, n)
	}
	if st.Hits+st.Collapsed != n-1 {
		t.Fatalf("hits+collapsed = %d, want %d", st.Hits+st.Collapsed, n-1)
	}
}

// TestMetricsEndpoint checks request counting, status classes and the
// gauge plumbing.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{MaxInFlight: 3})
	doGet(t, srv, "/stats")
	doGet(t, srv, "/stats")
	doGet(t, srv, "/efficiency")
	doGet(t, srv, "/efficiency")
	doGet(t, srv, "/bfs?node=9&stamp=9") // 400

	var m MetricsResponse
	mustDecode(t, doGet(t, srv, "/metrics").Body.Bytes(), &m)
	if m.Requests["/stats"] != 2 || m.Requests["/efficiency"] != 2 || m.Requests["/bfs"] != 1 {
		t.Fatalf("requests = %v", m.Requests)
	}
	if m.ResponsesByClass["4xx"] != 1 || m.ResponsesByClass["2xx"] != 4 {
		t.Fatalf("responsesByClass = %v", m.ResponsesByClass)
	}
	if m.Cache.Misses != 1 || m.Cache.Hits != 1 || m.CacheHitRate != 0.5 {
		t.Fatalf("cache = %+v hitRate %v", m.Cache, m.CacheHitRate)
	}
	if m.InFlight != 0 || m.MaxInFlight != 3 {
		t.Fatalf("inFlight = %d/%d, want 0/3", m.InFlight, m.MaxInFlight)
	}
	if m.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", m.UptimeSeconds)
	}
}

// TestWriteJSONLogsEncodeFailureOnce drives writeJSON into a failing
// writer twice and asserts exactly one log line.
func TestWriteJSONLogsEncodeFailureOnce(t *testing.T) {
	var logged []string
	srv := New(egraph.Figure1Graph(), Config{
		Logf: func(format string, args ...interface{}) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
	})
	w := &failingResponseWriter{h: make(http.Header)}
	srv.writeJSON(w, http.StatusOK, map[string]string{"a": "b"})
	srv.writeJSON(w, http.StatusOK, map[string]string{"c": "d"})
	if len(logged) != 1 {
		t.Fatalf("logged %d lines, want exactly 1: %v", len(logged), logged)
	}
	if !strings.Contains(logged[0], "encode failed") {
		t.Fatalf("log line = %q", logged[0])
	}
}

type failingResponseWriter struct {
	h http.Header
}

func (w *failingResponseWriter) Header() http.Header       { return w.h }
func (w *failingResponseWriter) WriteHeader(int)           {}
func (w *failingResponseWriter) Write([]byte) (int, error) { return 0, errors.New("wire cut") }

// TestReplaceGraphDoesNotCacheStaleCompute reproduces the swap race:
// a handler captures its (graph, revision) snapshot, ReplaceGraph
// lands, and only then does the handler's computation run. The result
// must be stored under the old revision — a fresh request after the
// swap has to recompute on the new graph, never serve the old graph's
// answer.
func TestReplaceGraphDoesNotCacheStaleCompute(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})

	// Capture the pre-swap snapshot the way every handler does.
	req := httptest.NewRequest(http.MethodGet, "/components/weak", nil)
	p := srv.params(req)

	srv.ReplaceGraph(egraph.IntroGameGraph(false))

	// The old-generation request computes after the swap.
	_, outcome, err := srv.runCached(context.Background(), p, "components/weak", "components/weak?mode=allpairs&limit=100", func() (interface{}, error) {
		return "old-graph-answer", nil
	})
	if err != nil {
		t.Fatalf("old-generation compute: %v", err)
	}
	if outcome != qcache.Miss {
		t.Fatalf("old-generation compute outcome = %v, want miss", outcome)
	}

	// A post-swap request for the same endpoint must miss and compute
	// on the new graph, not read the old generation's entry.
	rec2 := doGet(t, srv, "/components/weak")
	if got := rec2.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("post-swap X-Cache = %q, want miss (stale entry must be unreachable)", got)
	}
	if strings.Contains(rec2.Body.String(), "old-graph-answer") {
		t.Fatalf("post-swap response served the old generation's result: %s", rec2.Body.String())
	}
}
