package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/egraph"
	"repro/internal/obs"
	"repro/internal/wire"
)

// TestRevisionConsistencyAcrossSurfaces is the regression test for the
// /metrics graphRevision bug: it used to report the cache's version
// counter while /healthz reported the served snapshot's revision, and
// the two could disagree. All three surfaces (/healthz, /readyz,
// /metrics) plus the Prometheus eg_graph_revision gauge must name the
// same revision — the served snapshot's — after every kind of swap.
func TestRevisionConsistencyAcrossSurfaces(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})

	check := func(want uint64) {
		t.Helper()
		var h HealthResponse
		get(t, srv, "/healthz", http.StatusOK, &h)
		var rdy ReadyResponse
		get(t, srv, "/readyz", http.StatusOK, &rdy)
		var m MetricsResponse
		get(t, srv, "/metrics", http.StatusOK, &m)
		if h.GraphRevision != want || rdy.GraphRevision != want || m.GraphRevision != want {
			t.Fatalf("revision disagreement: healthz=%d readyz=%d metrics=%d, want %d",
				h.GraphRevision, rdy.GraphRevision, m.GraphRevision, want)
		}
		fams := scrapeProm(t, srv)
		for _, s := range fams["eg_graph_revision"].Samples {
			if s.Value != float64(want) {
				t.Fatalf("eg_graph_revision = %v, want %d", s.Value, want)
			}
		}
	}

	check(0)
	// Warm a cache entry so the cache's internal version counter has
	// been exercised before the swap (the old bug's source).
	doGet(t, srv, "/components/weak")
	for i := 1; i <= 3; i++ {
		srv.ReplaceGraph(egraph.Figure1Graph())
		check(uint64(i))
	}
}

// TestReadyz pins the readiness surface: a constructed server always
// answers 200 with the served revision (the 503 window lives in
// egserve's bootstrap handler, before a Server exists).
func TestReadyz(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})
	var rdy ReadyResponse
	get(t, srv, "/readyz", http.StatusOK, &rdy)
	if rdy.Status != "ready" {
		t.Fatalf("status = %q, want ready", rdy.Status)
	}
	srv.ReplaceGraph(egraph.Figure1Graph())
	get(t, srv, "/readyz", http.StatusOK, &rdy)
	if rdy.GraphRevision != 1 {
		t.Fatalf("graphRevision = %d, want 1", rdy.GraphRevision)
	}
}

// scrapeProm GETs /metrics.prom through the handler and strict-parses
// the exposition — every scrape in the tests is also a format check.
func scrapeProm(t *testing.T, srv *Server) map[string]*obs.PromFamily {
	t.Helper()
	rec := doGet(t, srv, "/metrics.prom")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics.prom status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParseProm(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v\n%s", err, rec.Body.String())
	}
	return fams
}

// TestMetricsPromExposition drives a small workload and checks the
// Prometheus rendering end to end: the serve-latency histogram carries
// endpoint × outcome × transport labels with bucket counts matching
// the observation counts, and the counter families agree with the JSON
// /metrics document they share atomics with.
func TestMetricsPromExposition(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})

	doGet(t, srv, "/katz")  // miss
	doGet(t, srv, "/katz")  // hit
	doGet(t, srv, "/katz")  // hit
	doGet(t, srv, "/stats") // uncached → outcome "none"
	doGet(t, srv, "/nosuch")

	fams := scrapeProm(t, srv)
	lat := fams["eg_serve_latency_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("eg_serve_latency_seconds missing or not a histogram: %+v", lat)
	}
	for _, want := range []struct {
		match map[string]string
		count float64
	}{
		{map[string]string{"endpoint": "/katz", "outcome": "miss", "transport": "http"}, 1},
		{map[string]string{"endpoint": "/katz", "outcome": "hit", "transport": "http"}, 2},
		{map[string]string{"endpoint": "/stats", "outcome": "none", "transport": "http"}, 1},
		{map[string]string{"endpoint": "other", "outcome": "none", "transport": "http"}, 1},
	} {
		h := lat.Find(want.match)
		if h == nil {
			t.Fatalf("no serve-latency series for %v", want.match)
		}
		if h.Count != want.count {
			t.Fatalf("series %v count = %v, want %v", want.match, h.Count, want.count)
		}
		if h.Cumulative[len(h.Cumulative)-1] != h.Count {
			t.Fatalf("series %v +Inf bucket %v != count %v", want.match, h.Cumulative[len(h.Cumulative)-1], h.Count)
		}
		if h.Sum <= 0 {
			t.Fatalf("series %v sum = %v, want > 0", want.match, h.Sum)
		}
	}

	reqs := fams["eg_requests_total"]
	if reqs == nil {
		t.Fatal("eg_requests_total missing")
	}
	found := false
	for _, s := range reqs.Samples {
		if len(s.Labels) > 0 && s.Labels["endpoint"] == "/katz" {
			found = true
			if s.Value != 3 {
				t.Fatalf("eg_requests_total{endpoint=/katz} = %v, want 3", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("no eg_requests_total series for /katz")
	}
	for _, name := range []string{"eg_goroutines", "eg_heap_alloc_bytes", "eg_graph_nodes", "eg_cache_events_total"} {
		if fams[name] == nil {
			t.Fatalf("family %s missing from exposition", name)
		}
	}
}

// TestTraceForcedKatzMiss is the acceptance trace: an X-Trace-forced
// cache-miss /katz request must appear at /debug/traces with the
// decode → cache → compute → encode span tree under one root, the
// cache span carrying outcome=miss.
func TestTraceForcedKatzMiss(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{
		Trace: obs.TracerOptions{SampleEvery: -1}, // forced traces only
	})

	req := httptest.NewRequest(http.MethodGet, "/katz", nil)
	req.Header.Set("X-Trace", "1")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/katz status %d", rec.Code)
	}
	// An untraced request must not enter the ring.
	doGet(t, srv, "/katz")

	var doc struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			Forced bool `json:"forced"`
			Spans  []struct {
				Parent int               `json:"parent"`
				Stage  string            `json:"stage"`
				DurUS  int64             `json:"durUs"`
				Attrs  map[string]string `json:"attrs"`
			} `json:"spans"`
		} `json:"traces"`
	}
	out := doGet(t, srv, "/debug/traces")
	if err := json.Unmarshal(out.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decoding /debug/traces: %v\n%s", err, out.Body.String())
	}
	if !doc.Enabled || len(doc.Traces) != 1 {
		t.Fatalf("traces = %d (enabled=%t), want exactly the forced one", len(doc.Traces), doc.Enabled)
	}
	tr := doc.Traces[0]
	if !tr.Forced {
		t.Fatal("trace not marked forced")
	}
	byStage := make(map[string]int, len(tr.Spans))
	for i, sp := range tr.Spans {
		byStage[sp.Stage] = i
	}
	for _, stage := range []string{"serve", "decode", "cache", "compute", "encode"} {
		if _, ok := byStage[stage]; !ok {
			t.Fatalf("span %q missing; spans: %+v", stage, tr.Spans)
		}
	}
	root := tr.Spans[byStage["serve"]]
	if root.Parent != -1 {
		t.Fatalf("serve span parent = %d, want -1", root.Parent)
	}
	if got := root.Attrs["endpoint"]; got != "katz" {
		t.Fatalf("root endpoint attr = %q, want katz", got)
	}
	if got := tr.Spans[byStage["cache"]].Attrs["outcome"]; got != "miss" {
		t.Fatalf("cache span outcome = %q, want miss", got)
	}
	if p := tr.Spans[byStage["compute"]].Parent; p != byStage["cache"] {
		t.Fatalf("compute span parent = %d, want the cache span %d", p, byStage["cache"])
	}
	for _, stage := range []string{"decode", "cache", "encode"} {
		if p := tr.Spans[byStage[stage]].Parent; p != byStage["serve"] {
			t.Fatalf("%s span parent = %d, want the serve span %d", stage, p, byStage["serve"])
		}
	}
}

// TestObsConcurrentHammer races readers, revision swaps and strict
// /metrics.prom scrapes — the -race hammer for the histogram registry.
// Each scrape must parse cleanly, the total request count must be
// monotone across scrapes, and at quiescence the histogram bucket
// sums must equal the observation counts exactly.
func TestObsConcurrentHammer(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})
	var served atomic.Int64 // requests fully recorded through ServeHTTP

	hit := func(url string) {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		srv.ServeHTTP(httptest.NewRecorder(), req)
		served.Add(1)
	}

	const (
		workers   = 4
		perWorker = 80
		swaps     = 25
		scrapes   = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			urls := []string{"/katz", "/components/weak", "/stats", "/closeness?node=0&stamp=0"}
			for i := 0; i < perWorker; i++ {
				hit(urls[(w+i)%len(urls)])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			srv.ReplaceGraph(egraph.Figure1Graph())
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastTotal float64
		for i := 0; i < scrapes; i++ {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.prom", nil))
			served.Add(1)
			fams, err := obs.ParseProm(strings.NewReader(rec.Body.String()))
			if err != nil {
				t.Errorf("scrape %d failed strict parse: %v", i, err)
				return
			}
			var total float64
			for _, h := range fams["eg_serve_latency_seconds"].Hists {
				total += h.Count
			}
			if total < lastTotal {
				t.Errorf("scrape %d: total observations went backwards: %v < %v", i, total, lastTotal)
				return
			}
			lastTotal = total
		}
	}()
	wg.Wait()

	// Quiescent: every recorded request is one observation, buckets sum
	// to the count per series, and quantiles are ordered.
	snaps := srv.Registry().HistogramSnapshots("eg_serve_latency_seconds")
	var total uint64
	for key, s := range snaps {
		var bucketSum uint64
		for _, c := range s.Counts {
			bucketSum += c
		}
		if bucketSum != s.Count {
			t.Fatalf("series %q: bucket sum %d != count %d", key, bucketSum, s.Count)
		}
		q50, q99 := s.Quantile(0.50), s.Quantile(0.99)
		if q50 < 0 || q99 < q50 {
			t.Fatalf("series %q: quantiles out of order: p50=%v p99=%v", key, q50, q99)
		}
		total += s.Count
	}
	if want := uint64(served.Load()); total != want {
		t.Fatalf("histogram observations = %d, want %d (one per served request)", total, want)
	}

	fams := scrapeProm(t, srv)
	var promTotal float64
	for _, h := range fams["eg_serve_latency_seconds"].Hists {
		promTotal += h.Count
	}
	if promTotal != float64(served.Load()) {
		t.Fatalf("exposition observations = %v, want %d", promTotal, served.Load())
	}
}

// TestWireTraceFlag forces a trace over the binary transport: a TQuery
// carrying FlagTrace must land in /debug/traces with transport=wire on
// the root span. Exercised through wireQuery directly — the framing
// layer's flag extraction is covered by the transport suite.
func TestWireTraceFlag(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{
		Trace: obs.TracerOptions{SampleEvery: -1},
	})
	f := srv.wireQuery(context.Background(), 1, "katz", map[string][]string{"top": {"3"}}, true)
	if f.typ != wire.RResult {
		t.Fatalf("frame type = %d, want RResult", f.typ)
	}
	out, err := srv.Tracer().Dump()
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	var doc struct {
		Traces []struct {
			Spans []struct {
				Stage string            `json:"stage"`
				Attrs map[string]string `json:"attrs"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("decoding dump: %v", err)
	}
	if len(doc.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(doc.Traces))
	}
	root := doc.Traces[0].Spans[0]
	if root.Stage != "serve" || root.Attrs["transport"] != "wire" {
		t.Fatalf("root span = %+v, want serve with transport=wire", root)
	}
	// And the latency landed under the wire transport label.
	snaps := srv.Registry().HistogramSnapshots("eg_serve_latency_seconds")
	key := strings.Join([]string{"/katz", "miss", "wire"}, "\xff")
	if s, ok := snaps[key]; !ok || s.Count != 1 {
		keys := make([]string, 0, len(snaps))
		for k := range snaps {
			keys = append(keys, fmt.Sprintf("%q", k))
		}
		t.Fatalf("no wire-transport observation; series: %v", keys)
	}
}
