package server

import (
	"net/http"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
)

// This file wires the serving layer into internal/obs (DESIGN.md §16):
// every counter the JSON /metrics document reports is also registered
// as a Prometheus family backed by the same atomics, the serve-latency
// and feed-lag histograms live here, and the /metrics.prom,
// /debug/traces and /readyz handlers render it all.

// registerObs registers the server's metric families. Called once from
// New, after every field the closures read is initialised.
func (s *Server) registerObs() {
	r := s.reg
	s.serveLat = r.Histogram("eg_serve_latency_seconds",
		"Request serve latency by endpoint, cache outcome (miss/hit/collapsed/carried/stale; none for uncached endpoints, error for failed wire decodes) and transport (http/wire).",
		"endpoint", "outcome", "transport")
	s.computeLat = r.Histogram("eg_compute_latency_seconds",
		"Successful analytics compute latency by endpoint — the distribution deadline-aware admission control compares remaining request budgets against (p99).",
		"endpoint")
	s.feedLag = r.Histogram("eg_feed_lag_seconds",
		"Change-feed delivery lag: epoch publish to event handoff into a subscriber's write queue.").With()

	r.Gauge("eg_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	r.Gauge("eg_graph_revision", "Revision of the currently served graph snapshot.", func() float64 {
		return float64(s.snap.Load().rev)
	})
	r.Gauge("eg_graph_nodes", "Nodes in the served graph.", func() float64 {
		return float64(s.Graph().NumNodes())
	})
	r.Gauge("eg_graph_stamps", "Time stamps in the served graph.", func() float64 {
		return float64(s.Graph().NumStamps())
	})
	r.Gauge("eg_graph_active_nodes", "Active temporal nodes (Def. 3) in the served graph.", func() float64 {
		return float64(s.Graph().NumActiveNodes())
	})

	r.Func("eg_requests_total", "HTTP requests received, by endpoint.",
		obs.Counter, []string{"endpoint"}, func() []obs.Sample {
			out := make([]obs.Sample, 0, len(s.requests))
			for path, c := range s.requests {
				out = append(out, obs.Sample{LabelValues: []string{path}, Value: float64(c.Load())})
			}
			return out
		})
	r.Func("eg_responses_total", "HTTP responses sent, by status class.",
		obs.Counter, []string{"class"}, func() []obs.Sample {
			return []obs.Sample{
				{LabelValues: []string{"2xx"}, Value: float64(s.class2xx.Load())},
				{LabelValues: []string{"4xx"}, Value: float64(s.class4xx.Load())},
				{LabelValues: []string{"5xx"}, Value: float64(s.class5xx.Load())},
			}
		})

	r.Func("eg_cache_events_total", "Result-cache events: hit/miss/collapsed lookups, evictions, carry-over insertions and hits served from carried entries.",
		obs.Counter, []string{"event"}, func() []obs.Sample {
			st := s.cache.Stats()
			return []obs.Sample{
				{LabelValues: []string{"hit"}, Value: float64(st.Hits)},
				{LabelValues: []string{"miss"}, Value: float64(st.Misses)},
				{LabelValues: []string{"collapsed"}, Value: float64(st.Collapsed)},
				{LabelValues: []string{"eviction"}, Value: float64(st.Evictions)},
				{LabelValues: []string{"carried_in"}, Value: float64(st.CarriedIn)},
				{LabelValues: []string{"carried_hit"}, Value: float64(st.CarriedHits)},
				{LabelValues: []string{"stale_served"}, Value: float64(s.staleServed.Load())},
			}
		})
	r.Gauge("eg_cache_entries", "Entries resident in the result cache.", func() float64 {
		return float64(s.cache.Stats().Entries)
	})

	r.Gauge("eg_inflight", "Expensive computations currently admitted through the gate.", func() float64 {
		return float64(s.inflight.Load())
	})
	r.Gauge("eg_inflight_max", "Capacity of the in-flight computation gate.", func() float64 {
		return float64(cap(s.gate))
	})
	r.Gauge("eg_retired_queue", "Replaced graph snapshots awaiting drain of their reader eras (the arena pin queue).", func() float64 {
		s.retireMu.Lock()
		defer s.retireMu.Unlock()
		return float64(len(s.retired))
	})

	r.Gauge("eg_wire_connections", "Open EGWP connections.", func() float64 {
		return float64(s.wireConns.Load())
	})
	r.Counter("eg_wire_queries_total", "TQuery frames served.", func() float64 {
		return float64(s.wireQueries.Load())
	})
	r.Counter("eg_wire_ingest_batches_total", "TIngest frames accepted into the write path.", func() float64 {
		return float64(s.wireIngest.Load())
	})
	r.Counter("eg_wire_events_total", "Change-feed events pushed to wire subscribers.", func() float64 {
		return float64(s.wireEvents.Load())
	})

	r.Counter("eg_feed_published_total", "Epochs published to the change-feed hub.", func() float64 {
		return float64(s.hub.Stats().Published)
	})
	r.Counter("eg_feed_subscriptions_total", "Feed subscriptions ever opened.", func() float64 {
		return float64(s.hub.Stats().Subscriptions)
	})
	r.Gauge("eg_feed_active", "Currently open feed subscriptions.", func() float64 {
		return float64(s.hub.Stats().Active)
	})
	r.Counter("eg_feed_gaps_total", "Gap events delivered to lagging subscribers.", func() float64 {
		return float64(s.hub.Stats().Gaps)
	})
	r.Gauge("eg_feed_ring_occupancy", "Fraction of the feed ring holding retained epochs.", func() float64 {
		st := s.hub.Stats()
		if st.Capacity == 0 {
			return 0
		}
		return float64(st.Retained) / float64(st.Capacity)
	})
}

// registerIngestObs registers the write-path families, reading the
// attached Log through s.ing so a later AttachIngest swap (tests) is
// picked up. Called once from the first AttachIngest.
func (s *Server) registerIngestObs() {
	stats := func() ingest.Stats {
		if lg := s.ing.Load(); lg != nil {
			return lg.Stats()
		}
		return ingest.Stats{}
	}
	s.reg.Func("eg_ingest_events_total", "Write-path events by disposition: appended (acknowledged), compacted (folded into a published epoch), throttled (backpressure).",
		obs.Counter, []string{"disposition"}, func() []obs.Sample {
			st := stats()
			return []obs.Sample{
				{LabelValues: []string{"appended"}, Value: float64(st.AppendedEvents)},
				{LabelValues: []string{"compacted"}, Value: float64(st.CompactedEvents)},
				{LabelValues: []string{"throttled"}, Value: float64(st.ThrottledEvents)},
			}
		})
	s.reg.Counter("eg_ingest_epochs_total", "Compaction epochs published.", func() float64 {
		return float64(stats().Epochs)
	})
	s.reg.Gauge("eg_ingest_pending_events", "Events buffered in the pending delta, not yet folded.", func() float64 {
		return float64(stats().PendingEvents)
	})
	s.reg.Counter("eg_ingest_checkpoints_total", "Checkpoints written.", func() float64 {
		return float64(stats().Checkpoints)
	})
	s.reg.Counter("eg_ingest_checkpoint_errors_total", "Checkpoint writes that failed.", func() float64 {
		return float64(stats().CheckpointErrors)
	})
	s.reg.Gauge("eg_degraded", "1 when the write path is read-only-degraded after a WAL failure (reads continue; ingest answers 503).", func() float64 {
		if lg := s.ing.Load(); lg != nil {
			if deg, _ := lg.Degraded(); deg {
				return 1
			}
		}
		return 0
	})
}

// Registry exposes the server's metric registry so the ingest pipeline
// (and tests) can register into the same one — one /metrics.prom
// scrape covers the whole process.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the span recorder (tests force traces through it).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// metricsProm is GET /metrics.prom: the whole registry as Prometheus
// text exposition — the same counters as the JSON /metrics, plus the
// latency/stage histograms as cumulative _bucket/_sum/_count series.
func (s *Server) metricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		s.encodeLogOnce.Do(func() {
			s.cfg.Logf("server: prom exposition write failed (further failures suppressed): %v", err)
		})
	}
}

// debugTraces is GET /debug/traces: the retained sampled and slow
// traces, newest first. Force a trace for one request with an X-Trace
// header (HTTP) or the FlagTrace bit on a TQuery (wire).
func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	out, err := s.tracer.Dump()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// readyz is GET /readyz: readiness as opposed to /healthz's liveness.
// A constructed Server always has a graph to serve, so it answers 200;
// the 503 window lives in cmd/egserve's bootstrap handler, which holds
// the listener while ingest.Recover replays the WAL and swaps the real
// server in only once the first graph is installed. Pollers (egload
// -waitReady) therefore measure restart-to-ready, not process-up.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, ReadyResponse{
		Status:        "ready",
		GraphRevision: s.snap.Load().rev,
	})
}

// ReadyResponse is the wire form of a 200 /readyz.
type ReadyResponse struct {
	Status        string `json:"status"`
	GraphRevision uint64 `json:"graphRevision"`
}
