// Package server exposes an evolving graph as a JSON-over-HTTP query
// service: the seed query endpoints (BFS distances, shortest temporal
// paths, reachability, forward neighbours, path-optimality criteria)
// plus the analytics layer (connected components, influence
// maximisation, closeness, global efficiency, temporal Katz) served
// through a versioned result cache with singleflight collapse
// (internal/qcache) and a worker-pool semaphore bounding concurrent
// expensive computations. cmd/egserve wires the handler to a listener;
// cmd/egload replays mixed workloads against it.
//
// Endpoints (all GET, all JSON):
//
//	/stats                          graph summary
//	/bfs?node=N&stamp=S[&mode=M][&direction=D]
//	/path?from=N,S&to=N,S[&mode=M]
//	/reach?node=N&stamp=S[&mode=M]
//	/neighbors?node=N&stamp=S[&mode=M]
//	/criteria?src=N&dst=N[&mode=M]
//	/components/weak[?mode=M][&limit=L]      cached
//	/components/strong[?minSize=K][&limit=L] cached
//	/components/sizes[?mode=M][&limit=L]     cached
//	/influence/greedy?k=K[&mode=M][&reverse=B] cached
//	/closeness?node=N&stamp=S[&mode=M]       cached
//	/efficiency[?mode=M]                     cached
//	/katz[?alpha=A][&mode=M][&top=K]         cached
//	/ingest/arcs                     POST an NDJSON mutation batch
//	/ingest/stats                    write-path counters
//	/ingest/checkpoint               POST to force a checkpoint now
//	/healthz                         liveness + graph revision
//	/metrics                         request/cache/in-flight counters
//
// mode is "allpairs" (default) or "consecutive"; direction is "forward"
// (default) or "backward". Errors come back as {"error": "..."} with
// status 400 (bad request) or 404 (inactive/unreachable). Endpoints
// marked cached set an X-Cache response header to "miss", "hit" or
// "collapsed" and an X-Graph-Revision header naming the snapshot the
// answer was computed on; their results are keyed by (endpoint,
// canonicalised params, graph revision), so ReplaceGraph invalidates
// every cached answer at once. AttachIngest connects the durable write
// path of internal/ingest, making the served graph live: accepted
// mutation batches fold into fresh snapshots that the compactor
// publishes through ReplaceGraph. The package Example exercises the
// seed endpoints against the paper's Figure 1 graph; DESIGN.md §10–11
// document the serving architecture and the write path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/egraph"
	"repro/internal/fault"
	"repro/internal/feed"
	"repro/internal/inc"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/wire"
)

// Config tunes the query service. The zero value serves with defaults
// sized for one process owning the machine.
type Config struct {
	// CacheCapacity bounds the number of cached analytics results
	// (default 1024 entries across CacheShards shards).
	CacheCapacity int
	// CacheShards is the cache's lock-domain count (default 8).
	CacheShards int
	// MaxInFlight bounds concurrently *computing* expensive queries —
	// collapsed and cached requests don't consume a slot. 0 means
	// GOMAXPROCS, the same sizing core.ReachSweep gives its worker
	// pool: analytics computations saturate the machine on their own,
	// so admitting more than one per core only adds scheduling churn.
	MaxInFlight int
	// Workers is the per-computation fan-out passed to the analytics
	// worker pools (components sweep, influence reach sets, efficiency
	// sweep); 0 means GOMAXPROCS.
	Workers int
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...interface{})
	// Faults arms the serving-layer fault-injection sites (internal/
	// fault): wire.accept / wire.read / wire.write on the EGWP
	// listener and query.compute in the cached-query core. nil (the
	// default) injects nothing and costs one nil check per site.
	Faults *fault.Injector
	// ServeStale enables the degraded read mode: when a cached
	// endpoint's compute fails server-side (injected fault, panic) or
	// its deadline budget runs out, the last good answer for the same
	// query is served instead, marked X-Cache: stale (wire flag
	// CacheStale). Stale answers may lag the served revision; the
	// X-Graph-Revision header still names the current snapshot.
	ServeStale bool
	// Registry receives the server's metric families (default: a fresh
	// obs.NewRegistry with runtime gauges). Share one registry between
	// the server and its ingest pipeline so a single /metrics.prom
	// scrape covers the whole process.
	Registry *obs.Registry
	// Trace tunes the span recorder behind /debug/traces; zero values
	// take obs defaults (sample 1/64, 250ms slow threshold).
	Trace obs.TracerOptions
}

// graphSnap pairs the served graph with the cache revision it belongs
// to, plus the incrementally maintained analytics (nil when no
// maintainer feeds this server). Handlers capture one snapshot per
// request, so a concurrent ReplaceGraph can never mix an old graph's
// computation into a new revision's cache entry (or vice versa), and
// maintained results always describe exactly the graph they travel
// with.
type graphSnap struct {
	g   *egraph.IntEvolvingGraph
	rev uint64
	res *inc.Results
}

// Server is the HTTP query service. Construct with New; the zero value
// is not usable. Server implements http.Handler.
type Server struct {
	cfg   Config
	snap  atomic.Pointer[graphSnap]
	cache *qcache.Cache
	mux   *http.ServeMux
	start time.Time

	// gate is the worker-pool semaphore bounding in-flight expensive
	// computations; inflight is the gauge /metrics reports.
	gate     chan struct{}
	inflight atomic.Int64

	// requests is populated once in New and read-only afterwards, so
	// concurrent counter loads need no locking.
	requests map[string]*atomic.Int64
	class2xx atomic.Int64
	class4xx atomic.Int64
	class5xx atomic.Int64

	encodeLogOnce sync.Once

	// replaceMu serialises ReplaceGraph calls (bump + snapshot store
	// must not interleave between two replacers).
	replaceMu sync.Mutex

	// carried counts cache entries kept warm across graph swaps by the
	// maintained-analytics carry-over (DESIGN.md §13).
	carried atomic.Int64

	// curEra counts the requests admitted since the last ReplaceGraph;
	// retired holds replaced graphs (FIFO) until every request that
	// could still observe them has drained — the pin tracking behind
	// the ingest arena's buffer recycling (DESIGN.md §12).
	curEra   atomic.Pointer[era]
	retireMu sync.Mutex
	retired  []retiredSnap
	retireFn atomic.Pointer[func(*egraph.IntEvolvingGraph)]

	// ing is the optional write path (AttachIngest); nil means the
	// server is read-only and /ingest/arcs answers 503.
	ing atomic.Pointer[ingest.Log]

	// hub is the change-feed fan-out (internal/feed): replaceWith
	// publishes one epoch per revision swap, wire subscribers stream
	// from it instead of polling X-Graph-Revision.
	hub *feed.Hub

	// wire-transport counters for /metrics.
	wireConns   atomic.Int64
	wireQueries atomic.Int64
	wireIngest  atomic.Int64
	wireEvents  atomic.Int64

	// Observability (internal/obs, DESIGN.md §16): the metric registry
	// rendering /metrics.prom, the serve-latency histogram family
	// (endpoint × cache outcome × transport), the feed delivery-lag
	// histogram, and the trace recorder behind /debug/traces.
	reg          *obs.Registry
	serveLat     *obs.HistogramVec
	computeLat   *obs.HistogramVec
	feedLag      *obs.Histogram
	tracer       *obs.Tracer
	ingestObsOne sync.Once

	// staleServed counts degraded-mode answers served from the stale
	// store (Config.ServeStale).
	staleServed atomic.Int64
}

// era is the pin domain of one graph generation: every in-flight
// request holds one reference on the era that was current when it was
// admitted. A request admitted under era k can only ever observe
// graphs retired at era k or later, so once eras drain in FIFO order a
// retired graph is provably unreachable.
type era struct {
	refs atomic.Int64
}

// retiredSnap is one replaced graph awaiting proof that no reader still
// holds it.
type retiredSnap struct {
	e  *era
	g  *egraph.IntEvolvingGraph
	fn func(*egraph.IntEvolvingGraph)
}

// New returns a Server serving queries over g.
func New(g *egraph.IntEvolvingGraph, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		cache:    qcache.New(qcache.Options{Capacity: cfg.CacheCapacity, Shards: cfg.CacheShards}),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		gate:     make(chan struct{}, cfg.MaxInFlight),
		requests: make(map[string]*atomic.Int64),
		reg:      reg,
		tracer:   obs.NewTracer(cfg.Trace),
	}
	s.snap.Store(&graphSnap{g: g})
	s.curEra.Store(&era{})
	s.hub = feed.NewHub(feed.Options{})
	s.registerObs()
	for _, ep := range []struct {
		path string
		h    http.HandlerFunc
	}{
		{"/stats", s.stats},
		{"/bfs", s.bfs},
		{"/path", s.path},
		{"/reach", s.reach},
		{"/neighbors", s.neighbors},
		{"/criteria", s.criteria},
		{"/components/weak", s.componentsWeak},
		{"/components/strong", s.componentsStrong},
		{"/components/sizes", s.componentsSizes},
		{"/influence/greedy", s.influenceGreedy},
		{"/closeness", s.closeness},
		{"/efficiency", s.efficiency},
		{"/katz", s.katz},
		{"/ingest/arcs", s.ingestArcs},
		{"/ingest/stats", s.ingestStats},
		{"/ingest/checkpoint", s.ingestCheckpoint},
		{"/healthz", s.healthz},
		{"/readyz", s.readyz},
		{"/metrics", s.metrics},
		{"/metrics.prom", s.metricsProm},
		{"/debug/traces", s.debugTraces},
	} {
		s.mux.HandleFunc(ep.path, ep.h)
		s.requests[ep.path] = new(atomic.Int64)
	}
	// Unknown paths answer the same versioned error envelope as every
	// other failure — no bare text/plain 404s on this surface.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no such endpoint %q", r.URL.Path))
	})
	return s
}

// Handler returns the HTTP handler serving queries over g with default
// Config — the seed-era constructor, kept for callers that only need a
// handler value.
func Handler(g *egraph.IntEvolvingGraph) http.Handler { return New(g, Config{}) }

// ServeHTTP dispatches to the endpoint handlers, counting requests per
// endpoint and responses per status class for /metrics, and recording
// serve latency into the endpoint × outcome × transport histogram.
// Every request pins the current era for its whole lifetime, so any
// graph snapshot it captures stays provably reachable until it
// returns.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	e := s.pinEra()
	defer s.unpinEra(e)
	endpoint := r.URL.Path
	if c, ok := s.requests[endpoint]; ok {
		c.Add(1)
	} else {
		endpoint = "other" // unknown paths share one label, bounding cardinality
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	switch {
	case rec.status >= 500:
		s.class5xx.Add(1)
	case rec.status >= 400:
		s.class4xx.Add(1)
	default:
		s.class2xx.Add(1)
	}
	outcome := rec.Header().Get("X-Cache")
	if outcome == "" {
		outcome = "none" // uncached endpoint
	}
	s.serveLat.With(endpoint, outcome, "http").Observe(time.Since(start).Nanoseconds())
}

// Graph returns the currently served graph snapshot — the read side of
// ReplaceGraph. The ingest compactor folds pending deltas onto it
// without holding its own reference, so a restarted or re-attached
// pipeline always builds on what is actually being served. Handlers
// that also cache must capture the full snapshot via params instead,
// so the graph and its revision travel together.
func (s *Server) Graph() *egraph.IntEvolvingGraph { return s.snap.Load().g }

// Revision returns the cache revision of the currently served graph
// (0 for the graph the server was constructed with, bumped by every
// ReplaceGraph).
func (s *Server) Revision() uint64 { return s.snap.Load().rev }

// ReplaceGraph swaps the served graph and bumps the cache revision,
// invalidating every cached analytics result. In-flight requests
// finish against the (graph, revision) snapshot they captured: a
// computation started on the old graph is stored under the old
// revision, which no future request can read, so it ages out of the
// LRU rather than ever being served as the new graph's answer. It
// returns the new revision.
//
// The replaced graph enters the retired queue; once every request that
// could still observe it has drained, the NotifyRetired callback (if
// any) fires — external callers of Graph() that retain snapshots
// across epochs must not register one, see NotifyRetired.
func (s *Server) ReplaceGraph(g *egraph.IntEvolvingGraph) uint64 {
	return s.replaceWith(g, nil)
}

// ReplaceGraphWithAnalytics is ReplaceGraph for publishers that also
// maintain analytics incrementally (ingest.AnalyticsPublisher): the
// maintained results travel with the graph snapshot, so /components/*
// and /katz serve them instead of recomputing, and cached entries the
// delta classification proves unaffected are carried over to the new
// revision instead of being invalidated.
func (s *Server) ReplaceGraphWithAnalytics(g *egraph.IntEvolvingGraph, res *inc.Results) uint64 {
	return s.replaceWith(g, res)
}

// PublishAnalytics attaches maintained results to the currently served
// snapshot without bumping the revision — the hookup for priming: the
// maintainer's first full computation describes the graph already
// being served, so invalidating the cache would only discard answers
// that are still exact.
func (s *Server) PublishAnalytics(res *inc.Results) {
	s.replaceMu.Lock()
	old := s.snap.Load()
	s.snap.Store(&graphSnap{g: old.g, rev: old.rev, res: res})
	s.replaceMu.Unlock()
}

func (s *Server) replaceWith(g *egraph.IntEvolvingGraph, res *inc.Results) uint64 {
	s.replaceMu.Lock()
	// Bump first: between the two stores a request may still capture
	// the old graph with its old revision (benign brief staleness),
	// but never the old graph with the new revision.
	rev := s.cache.Bump()
	old := s.snap.Load()
	s.snap.Store(&graphSnap{g: g, rev: rev, res: res})
	if res != nil {
		// Keep provably unaffected entries warm across the swap. Racing
		// requests under the new revision may recompute one concurrently;
		// both values are identical by the carry-over proof, so the
		// last-writer refresh inside the cache is benign.
		if n := s.cache.CarryOver(old.rev, rev, carryKeep(res)); n > 0 {
			s.carried.Add(int64(n))
		}
	}
	if old.g != g {
		// Close the old era: requests admitted from here on can no
		// longer observe old.g, so it is unreachable once every era up
		// to this one drains.
		oldEra := s.curEra.Swap(&era{})
		var fn func(*egraph.IntEvolvingGraph)
		if p := s.retireFn.Load(); p != nil {
			fn = *p
		}
		s.retireMu.Lock()
		s.retired = append(s.retired, retiredSnap{e: oldEra, g: old.g, fn: fn})
		s.retireMu.Unlock()
	}
	// Publish the epoch to the change feed while still holding
	// replaceMu, so epochs enter the hub in revision order. Publishing
	// only the immutable results (never a graph) keeps the feed's ring
	// out of the era/retire proof entirely.
	s.hub.Publish(feed.Epoch{
		Revision:    rev,
		Nodes:       g.NumNodes(),
		Stamps:      g.NumStamps(),
		ActiveNodes: g.NumActiveNodes(),
		Results:     res,
		Prev:        old.res,
	})
	s.replaceMu.Unlock()
	s.sweepRetired()
	return rev
}

// NotifyRetired registers fn to be called exactly once per graph
// replaced by ReplaceGraph, after the pin tracking proves no request
// can still observe it. The ingest write path registers its arena
// recycler here. The proof covers request handlers (ServeHTTP pins per
// request) and the compactor's own fold base; a caller that grabs
// Graph() outside a request and keeps querying it across epochs is
// outside the contract and must not combine that pattern with a
// registered recycler.
func (s *Server) NotifyRetired(fn func(*egraph.IntEvolvingGraph)) {
	s.retireFn.Store(&fn)
}

// pinEra acquires a reference on the current era. The retry loop
// closes the admit/retire race: a reference only counts if the era is
// still current after the increment, otherwise the sweeper may already
// have read the counter.
func (s *Server) pinEra() *era {
	for {
		e := s.curEra.Load()
		e.refs.Add(1)
		if s.curEra.Load() == e {
			return e
		}
		s.unpinEra(e) // raced ReplaceGraph: release and pin the new era
	}
}

func (s *Server) unpinEra(e *era) {
	if e.refs.Add(-1) == 0 {
		s.sweepRetired()
	}
}

// sweepRetired releases retired graphs in FIFO order, stopping at the
// first era that still has readers: a request pinned to era k may
// observe any graph retired at era ≥ k, so later entries must wait for
// earlier eras even when their own counter is zero.
func (s *Server) sweepRetired() {
	s.retireMu.Lock()
	var ready []retiredSnap
	for len(s.retired) > 0 && s.retired[0].e.refs.Load() == 0 {
		ready = append(ready, s.retired[0])
		s.retired = s.retired[1:]
	}
	s.retireMu.Unlock()
	for _, r := range ready {
		if r.fn != nil {
			r.fn(r.g)
		}
	}
}

// CacheStats exposes the cache counters (for tests and cmd/egload).
func (s *Server) CacheStats() qcache.Stats { return s.cache.Stats() }

// FeedHub exposes the change-feed hub: egserve closes it on shutdown,
// tests subscribe directly.
func (s *Server) FeedHub() *feed.Hub { return s.hub }

// CacheCarried returns how many cache entries the maintained-analytics
// carry-over has kept warm across graph swaps since startup.
func (s *Server) CacheCarried() int64 { return s.carried.Load() }

// carryKeep builds the carry-over predicate for one epoch's maintained
// results: given a cached key (revision prefix already stripped), it
// reports whether the delta behind the swap provably cannot change
// that answer (DESIGN.md §13).
//
//   - A no-op delta changes nothing: every entry survives.
//   - The weak-component endpoints depend only on the partition, which
//     is mode-independent for weak connectivity; they survive whenever
//     the partition is unchanged.
//   - A closeness query only traverses its root's weak component; it
//     survives when that component kept its exact membership and arc
//     set (QueryUnaffected).
//
// Everything else (influence, efficiency, sizes, strong components,
// katz) depends on global structure or arc weights in ways the
// classification does not bound, so those entries fall back to the
// revision bump.
func carryKeep(res *inc.Results) func(key string) bool {
	return func(key string) bool {
		if res.NoOp() {
			return true
		}
		switch {
		case strings.HasPrefix(key, "components/weak?"):
			return res.PartitionUnchanged()
		case strings.HasPrefix(key, "closeness?"):
			if !res.AxisUnchanged() {
				return false
			}
			var node, stamp int32
			var mode string
			if _, err := fmt.Sscanf(key, "closeness?node=%d&stamp=%d&mode=%s", &node, &stamp, &mode); err != nil {
				return false
			}
			return res.QueryUnaffected(node, stamp)
		default:
			return false
		}
	}
}

// admitMinSamples is how many successful computes an endpoint needs
// before its p99 is trusted for admission control — below it every
// budgeted request is admitted (cold estimates reject wrongly).
const admitMinSamples = 8

// errBudget rejects a compute whose remaining deadline budget is below
// the endpoint's observed p99 compute latency: starting it would burn
// a gate slot on an answer the client will not wait for. Maps to 503
// unavailable (retriable) unless serve-stale has a fallback.
var errBudget = errors.New("server: remaining deadline budget below the endpoint's p99 compute latency")

// runCached executes one cacheable query through the versioned cache
// at the revision captured in p — the revision the request's graph
// snapshot belongs to — computing at most once across concurrent
// identical requests, with the computation itself admitted through the
// in-flight gate. It is the transport-neutral core under both the HTTP
// handlers and the wire loop: both form identical keys (request.go), so
// both transports share every cache entry.
//
// ctx carries the request's deadline budget (X-Budget-Ms / _budget_ms,
// see withBudget): waiting for the gate and for a singleflight leader
// both respect it, and admission control rejects a compute that cannot
// finish inside it. A leader whose own context dies mid-compute
// abandons the flight without poisoning followers (qcache.DoAtCtx).
// With Config.ServeStale, a server-side compute failure or budget
// rejection falls back to the last good answer for the same query.
func (s *Server) runCached(ctx context.Context, p *params, endpoint, key string, compute func() (interface{}, error)) (interface{}, qcache.Outcome, error) {
	val, outcome, err := s.cache.DoAtCtx(ctx, p.rev, key, func(ctx context.Context) (interface{}, error) {
		select {
		case s.gate <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.gate
		}()
		if err := s.admit(ctx, endpoint); err != nil {
			return nil, err
		}
		if err := s.cfg.Faults.Fire(fault.QueryCompute); err != nil {
			return nil, err
		}
		start := time.Now()
		v, err := compute()
		if err == nil {
			s.computeLat.With(endpoint).Observe(time.Since(start).Nanoseconds())
		}
		return v, err
	})
	if err != nil && s.cfg.ServeStale && staleEligible(err) {
		if v, ok := s.cache.Stale(key); ok {
			s.staleServed.Add(1)
			return v, qcache.Stale, nil
		}
	}
	return val, outcome, err
}

// admit is the deadline-aware admission check: with a budget attached
// and enough history, a compute whose endpoint p99 exceeds the
// remaining budget is rejected up front with errBudget instead of
// being started and abandoned.
func (s *Server) admit(ctx context.Context, endpoint string) error {
	d, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	snap := s.computeLat.With(endpoint).Snapshot()
	if snap.Count < admitMinSamples {
		return nil
	}
	if p99 := time.Duration(snap.Quantile(0.99)); time.Until(d) < p99 {
		return fmt.Errorf("%w (endpoint %s, p99 %s)", errBudget, endpoint, p99.Round(time.Microsecond))
	}
	return nil
}

// staleEligible reports whether a failure may be papered over with the
// last good answer: server-side conditions only (budget exhaustion,
// injected faults, panicked computes). Request problems — bad params,
// inactive roots — are deterministic answers and never go stale.
func staleEligible(err error) bool {
	return errors.Is(err, errBudget) || errors.Is(err, qcache.ErrPanic) || fault.IsFault(err)
}

// withBudget derives the request context carrying the client's
// declared deadline budget: ms milliseconds from now, when positive.
// The returned cancel must run when the request finishes.
func withBudget(ctx context.Context, ms int64) (context.Context, context.CancelFunc) {
	if ms <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}

// statusRecorder captures the response status for the class counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Mid-body failures (client gone, marshal bug) have no recovery
		// path — the status line is already written — but they must not
		// vanish either. Log the first one; a churning client pool
		// would otherwise flood the log with one line per disconnect.
		s.encodeLogOnce.Do(func() {
			s.cfg.Logf("server: response encode failed (further failures suppressed): %v", err)
		})
	}
}

// ErrorResponse is the versioned error envelope every endpoint answers
// with: a transport-neutral code (wire.Code's JSON spelling — the
// binary transport carries the same enum as a byte), the message, an
// optional detail, and the revision the server was at. The "error" key
// is the envelope's message field, so pre-envelope clients that only
// read .error keep working.
type ErrorResponse struct {
	Code     string `json:"code"`
	Error    string `json:"error"`
	Detail   string `json:"detail,omitempty"`
	Revision uint64 `json:"revision"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeErrorDetail(w, status, msg, "")
}

func (s *Server) writeErrorDetail(w http.ResponseWriter, status int, msg, detail string) {
	// Every retriable failure carries the same retry hint: 429
	// (backpressure) and 503 (degraded write path, budget rejection,
	// bootstrap) all mean "same request, later". egclient treats the
	// value as its backoff floor.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, ErrorResponse{
		Code:     wire.CodeFromStatus(status).String(),
		Error:    msg,
		Detail:   detail,
		Revision: s.Revision(),
	})
}
