// Package server exposes an evolving graph as a JSON-over-HTTP query
// service: BFS distances, shortest temporal paths, reachability,
// forward neighbours, and the four path-optimality criteria. The graph
// is immutable once served, so every handler is safe for concurrent
// use; cmd/egserve wires this handler to a listener.
//
// Endpoints (all GET, all JSON):
//
//	/stats                         graph summary
//	/bfs?node=N&stamp=S[&mode=M][&direction=D]
//	/path?from=N,S&to=N,S[&mode=M]
//	/reach?node=N&stamp=S[&mode=M]
//	/neighbors?node=N&stamp=S[&mode=M]
//	/criteria?src=N&dst=N[&mode=M]
//
// mode is "allpairs" (default) or "consecutive"; direction is "forward"
// (default) or "backward". Errors come back as {"error": "..."} with
// status 400 (bad request) or 404 (inactive/unreachable). The package
// Example exercises every endpoint against the paper's Figure 1 graph.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/egraph"
	"repro/internal/temporal"
)

// Handler returns the HTTP handler serving queries over g.
func Handler(g *egraph.IntEvolvingGraph) http.Handler {
	s := &server{g: g}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.stats)
	mux.HandleFunc("/bfs", s.bfs)
	mux.HandleFunc("/path", s.path)
	mux.HandleFunc("/reach", s.reach)
	mux.HandleFunc("/neighbors", s.neighbors)
	mux.HandleFunc("/criteria", s.criteria)
	return mux
}

type server struct {
	g *egraph.IntEvolvingGraph
}

// TemporalNodeJSON is the wire form of a temporal node.
type TemporalNodeJSON struct {
	Node  int32 `json:"node"`
	Stamp int32 `json:"stamp"`
	Label int64 `json:"label"`
}

// StatsResponse is the wire form of /stats.
type StatsResponse struct {
	Nodes        int     `json:"nodes"`
	Stamps       int     `json:"stamps"`
	StaticEdges  int     `json:"staticEdges"`
	CausalEdges  int     `json:"causalEdges"`
	ActiveNodes  int     `json:"activeTemporalNodes"`
	Directed     bool    `json:"directed"`
	FirstLabel   int64   `json:"firstLabel"`
	LastLabel    int64   `json:"lastLabel"`
	EdgesByStamp []int   `json:"edgesByStamp"`
	Density      float64 `json:"activeDensity"`
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	g := s.g
	edges := make([]int, g.NumStamps())
	for t := range edges {
		edges[t] = g.SnapshotEdgeCount(t)
	}
	resp := StatsResponse{
		Nodes:        g.NumNodes(),
		Stamps:       g.NumStamps(),
		StaticEdges:  g.StaticEdgeCount(),
		CausalEdges:  g.CausalEdgeCount(egraph.CausalAllPairs),
		ActiveNodes:  g.NumActiveNodes(),
		Directed:     g.Directed(),
		FirstLabel:   g.TimeLabel(0),
		LastLabel:    g.TimeLabel(g.NumStamps() - 1),
		EdgesByStamp: edges,
		Density:      float64(g.NumActiveNodes()) / float64(g.NumNodes()*g.NumStamps()),
	}
	writeJSON(w, http.StatusOK, resp)
}

// BFSEntry is one reached temporal node in /bfs.
type BFSEntry struct {
	TemporalNodeJSON
	Dist int `json:"dist"`
}

// BFSResponse is the wire form of /bfs.
type BFSResponse struct {
	Root    TemporalNodeJSON `json:"root"`
	Reached []BFSEntry       `json:"reached"`
	Levels  []int            `json:"levels"`
}

func (s *server) bfs(w http.ResponseWriter, r *http.Request) {
	root, ok := s.temporalNodeParam(w, r, "node", "stamp")
	if !ok {
		return
	}
	mode, ok := modeParam(w, r)
	if !ok {
		return
	}
	opts := core.Options{Mode: mode}
	switch dir := r.URL.Query().Get("direction"); dir {
	case "", "forward":
	case "backward":
		opts.Direction = core.Backward
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown direction %q", dir))
		return
	}
	res, err := core.BFS(s.g, root, opts)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrInactiveRoot) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	resp := BFSResponse{Root: s.wire(root), Levels: res.LevelSizes()}
	res.Visit(func(tn egraph.TemporalNode, d int) bool {
		resp.Reached = append(resp.Reached, BFSEntry{TemporalNodeJSON: s.wire(tn), Dist: d})
		return true
	})
	writeJSON(w, http.StatusOK, resp)
}

// PathResponse is the wire form of /path.
type PathResponse struct {
	From TemporalNodeJSON   `json:"from"`
	To   TemporalNodeJSON   `json:"to"`
	Hops int                `json:"hops"`
	Path []TemporalNodeJSON `json:"path"`
}

func (s *server) path(w http.ResponseWriter, r *http.Request) {
	from, ok := s.pairParam(w, r, "from")
	if !ok {
		return
	}
	to, ok := s.pairParam(w, r, "to")
	if !ok {
		return
	}
	mode, ok := modeParam(w, r)
	if !ok {
		return
	}
	p, err := core.ShortestPath(s.g, from, to, mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if p == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("%v is not reachable from %v", to, from))
		return
	}
	resp := PathResponse{From: s.wire(from), To: s.wire(to), Hops: p.Hops()}
	for _, tn := range p {
		resp.Path = append(resp.Path, s.wire(tn))
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReachResponse is the wire form of /reach.
type ReachResponse struct {
	Root          TemporalNodeJSON `json:"root"`
	TemporalNodes int              `json:"temporalNodes"`
	DistinctNodes int              `json:"distinctNodes"`
	MaxDist       int              `json:"maxDist"`
}

func (s *server) reach(w http.ResponseWriter, r *http.Request) {
	root, ok := s.temporalNodeParam(w, r, "node", "stamp")
	if !ok {
		return
	}
	mode, ok := modeParam(w, r)
	if !ok {
		return
	}
	res, err := core.BFS(s.g, root, core.Options{Mode: mode})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrInactiveRoot) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	distinct := make(map[int32]bool)
	res.Visit(func(tn egraph.TemporalNode, _ int) bool {
		distinct[tn.Node] = true
		return true
	})
	writeJSON(w, http.StatusOK, ReachResponse{
		Root:          s.wire(root),
		TemporalNodes: res.NumReached(),
		DistinctNodes: len(distinct),
		MaxDist:       res.MaxDist(),
	})
}

// NeighborsResponse is the wire form of /neighbors.
type NeighborsResponse struct {
	Of        TemporalNodeJSON   `json:"of"`
	Neighbors []TemporalNodeJSON `json:"neighbors"`
}

func (s *server) neighbors(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.temporalNodeParam(w, r, "node", "stamp")
	if !ok {
		return
	}
	mode, ok := modeParam(w, r)
	if !ok {
		return
	}
	resp := NeighborsResponse{Of: s.wire(tn)}
	for _, nb := range core.ForwardNeighbors(s.g, tn, mode) {
		resp.Neighbors = append(resp.Neighbors, s.wire(nb))
	}
	writeJSON(w, http.StatusOK, resp)
}

// CriteriaResponse is the wire form of /criteria.
type CriteriaResponse struct {
	Source          int32 `json:"source"`
	Target          int32 `json:"target"`
	Reachable       bool  `json:"reachable"`
	ShortestHops    int   `json:"shortestHops"`
	EarliestArrival int64 `json:"earliestArrival"`
	LatestDeparture int64 `json:"latestDeparture"`
	FastestDuration int64 `json:"fastestDuration"`
}

func (s *server) criteria(w http.ResponseWriter, r *http.Request) {
	src, ok := s.nodeParam(w, r, "src")
	if !ok {
		return
	}
	dst, ok := s.nodeParam(w, r, "dst")
	if !ok {
		return
	}
	mode, ok := modeParam(w, r)
	if !ok {
		return
	}
	sum, err := temporal.Compare(s.g, src, dst, mode)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrInactiveRoot) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CriteriaResponse{
		Source:          sum.Source,
		Target:          sum.Target,
		Reachable:       sum.Reachable,
		ShortestHops:    sum.ShortestHops,
		EarliestArrival: sum.EarliestArrival,
		LatestDeparture: sum.LatestDeparture,
		FastestDuration: sum.FastestDuration,
	})
}

// --- parameter parsing ------------------------------------------------

func (s *server) nodeParam(w http.ResponseWriter, r *http.Request, key string) (int32, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("missing parameter %q", key))
		return 0, false
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 || int(v) >= s.g.NumNodes() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s=%q out of range (0..%d)", key, raw, s.g.NumNodes()-1))
		return 0, false
	}
	return int32(v), true
}

func (s *server) stampParam(w http.ResponseWriter, r *http.Request, key string) (int32, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("missing parameter %q", key))
		return 0, false
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 || int(v) >= s.g.NumStamps() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s=%q out of range (0..%d)", key, raw, s.g.NumStamps()-1))
		return 0, false
	}
	return int32(v), true
}

func (s *server) temporalNodeParam(w http.ResponseWriter, r *http.Request, nodeKey, stampKey string) (egraph.TemporalNode, bool) {
	node, ok := s.nodeParam(w, r, nodeKey)
	if !ok {
		return egraph.TemporalNode{}, false
	}
	stamp, ok := s.stampParam(w, r, stampKey)
	if !ok {
		return egraph.TemporalNode{}, false
	}
	return egraph.TemporalNode{Node: node, Stamp: stamp}, true
}

// pairParam parses "N,S" temporal-node literals (the /path endpoint).
func (s *server) pairParam(w http.ResponseWriter, r *http.Request, key string) (egraph.TemporalNode, bool) {
	raw := r.URL.Query().Get(key)
	parts := strings.Split(raw, ",")
	if raw == "" || len(parts) != 2 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s must be \"node,stamp\", got %q", key, raw))
		return egraph.TemporalNode{}, false
	}
	node, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 32)
	stamp, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 32)
	if err1 != nil || err2 != nil ||
		node < 0 || int(node) >= s.g.NumNodes() ||
		stamp < 0 || int(stamp) >= s.g.NumStamps() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s=%q out of range", key, raw))
		return egraph.TemporalNode{}, false
	}
	return egraph.TemporalNode{Node: int32(node), Stamp: int32(stamp)}, true
}

func modeParam(w http.ResponseWriter, r *http.Request) (egraph.CausalMode, bool) {
	switch m := r.URL.Query().Get("mode"); m {
	case "", "allpairs":
		return egraph.CausalAllPairs, true
	case "consecutive":
		return egraph.CausalConsecutive, true
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (allpairs or consecutive)", m))
		return 0, false
	}
}

func (s *server) wire(tn egraph.TemporalNode) TemporalNodeJSON {
	return TemporalNodeJSON{Node: tn.Node, Stamp: tn.Stamp, Label: s.g.TimeLabel(int(tn.Stamp))}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // network write failures have no recovery path here
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
