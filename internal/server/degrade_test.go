package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/egraph"
	"repro/internal/fault"
	"repro/internal/qcache"
	"repro/internal/wire"
)

// seedComputeLat plants enough observations on one endpoint's compute
// histogram that admission control has a p99 to compare budgets
// against (admitMinSamples of them, all at d).
func seedComputeLat(s *Server, endpoint string, d time.Duration) {
	for i := 0; i < admitMinSamples+2; i++ {
		s.computeLat.With(endpoint).Observe(d.Nanoseconds())
	}
}

// budgetGet issues one GET with an X-Budget-Ms header and returns the
// recorder.
func budgetGet(t *testing.T, s *Server, url, budgetMs string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	if budgetMs != "" {
		req.Header.Set("X-Budget-Ms", budgetMs)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestAdmissionControl pins the deadline-aware rejection contract: a
// request whose remaining budget is below the endpoint's observed p99
// compute latency is refused up front with 503 + Retry-After, an ample
// or absent budget computes normally, and cache hits always serve —
// admission guards computes, not lookups.
func TestAdmissionControl(t *testing.T) {
	s := New(egraph.Figure1Graph(), Config{Logf: func(string, ...interface{}) {}})
	seedComputeLat(s, "katz", 50*time.Millisecond)

	if rec := budgetGet(t, s, "/katz?top=3", "5"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("budget 5ms < p99 50ms: status %d (body %s), want 503", rec.Code, rec.Body.String())
	} else if rec.Header().Get("Retry-After") == "" {
		t.Fatal("admission rejection must carry Retry-After")
	}

	if rec := budgetGet(t, s, "/katz?top=3", "5000"); rec.Code != http.StatusOK {
		t.Fatalf("budget 5s: status %d (body %s), want 200", rec.Code, rec.Body.String())
	}
	if rec := budgetGet(t, s, "/katz?top=4", ""); rec.Code != http.StatusOK {
		t.Fatalf("no budget: status %d, want 200 (absent deadline admits)", rec.Code)
	}

	// The 5s request cached katz?top=3; a hit must serve even under a
	// hopeless budget — only the compute path is admission-gated.
	rec := budgetGet(t, s, "/katz?top=3", "5")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("cached entry under tiny budget: status %d X-Cache %q, want 200 hit",
			rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestAdmissionNeedsSamples: with fewer than admitMinSamples
// observations the gate stays open — one slow outlier must not start
// rejecting traffic.
func TestAdmissionNeedsSamples(t *testing.T) {
	s := New(egraph.Figure1Graph(), Config{Logf: func(string, ...interface{}) {}})
	for i := 0; i < admitMinSamples-1; i++ {
		s.computeLat.With("katz").Observe(time.Second.Nanoseconds())
	}
	if rec := budgetGet(t, s, "/katz?top=3", "50"); rec.Code != http.StatusOK {
		t.Fatalf("below-min-samples admission rejected: status %d (body %s)", rec.Code, rec.Body.String())
	}
}

// TestServeStaleFallback pins the serve-stale contract end to end:
// once a key has answered at one revision, a compute failure at a
// later revision serves that last good answer byte-identically, marked
// X-Cache: stale — but only when the operator opted in, and never for
// deterministic request errors.
func TestServeStaleFallback(t *testing.T) {
	// after=1: the first compute (which warms cache + stale store)
	// succeeds, every later one fails with an injected I/O error.
	inj := fault.Must("seed 1\nquery.compute error=io after=1")
	s := New(egraph.Figure1Graph(), Config{
		Faults:     inj,
		ServeStale: true,
		Logf:       func(string, ...interface{}) {},
	})

	first := budgetGet(t, s, "/katz?top=3", "")
	if first.Code != http.StatusOK {
		t.Fatalf("warming query: status %d (body %s)", first.Code, first.Body.String())
	}

	s.ReplaceGraph(egraph.Figure1Graph()) // bump the revision: the versioned entry is dead
	rec := budgetGet(t, s, "/katz?top=3", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stale fallback: status %d (body %s), want 200", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "stale" {
		t.Fatalf("X-Cache = %q, want stale", got)
	}
	if rec.Body.String() != first.Body.String() {
		t.Fatalf("stale body diverged from the last good answer:\n%s\nvs\n%s", rec.Body, first.Body)
	}
	var m MetricsResponse
	get(t, s, "/metrics", http.StatusOK, &m)
	if m.StaleServed != 1 {
		t.Fatalf("metrics staleServed = %d, want 1", m.StaleServed)
	}

	// A request error (malformed parameter) must never serve stale:
	// only server-side failures are eligible.
	if rec := budgetGet(t, s, "/katz?top=bogus", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad request under serve-stale: status %d, want 400", rec.Code)
	}
}

// TestComputeFaultWithoutServeStale: the same injected failure without
// the opt-in is a plain 503 — serve-stale never engages silently.
func TestComputeFaultWithoutServeStale(t *testing.T) {
	inj := fault.Must("seed 1\nquery.compute error=io after=1")
	s := New(egraph.Figure1Graph(), Config{Faults: inj, Logf: func(string, ...interface{}) {}})
	if rec := budgetGet(t, s, "/katz?top=3", ""); rec.Code != http.StatusOK {
		t.Fatalf("warming query: status %d", rec.Code)
	}
	s.ReplaceGraph(egraph.Figure1Graph())
	rec := budgetGet(t, s, "/katz?top=3", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("injected compute fault: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("injected-fault 503 must carry Retry-After")
	}
}

// TestWireBudgetParam pins the wire spelling of deadline propagation:
// _budget_ms inside the query encoding applies the budget (admission
// rejects under it) and is stripped before the cache key is built, so
// budgeted and unbudgeted spellings of one query share an entry.
func TestWireBudgetParam(t *testing.T) {
	s := New(egraph.Figure1Graph(), Config{Logf: func(string, ...interface{}) {}})
	seedComputeLat(s, "katz", 50*time.Millisecond)

	f := s.wireQuery(t.Context(), 1, "katz", map[string][]string{"top": {"3"}, budgetParam: {"5"}}, false)
	if f.typ != wire.RError {
		t.Fatalf("frame type = %d, want RError (budget 5ms < p99 50ms)", f.typ)
	}
	code, _, _, _, err := wire.DecodeError(f.payload)
	if err != nil || code != wire.CodeUnavailable {
		t.Fatalf("error frame code = %v (%v), want unavailable", code, err)
	}

	// Warm the entry without a budget, then ask again WITH a generous
	// budget: a hit proves the reserved param never reached the key.
	if f := s.wireQuery(t.Context(), 2, "katz", map[string][]string{"top": {"3"}}, false); f.typ != wire.RResult {
		t.Fatalf("warming wire query failed: type %d", f.typ)
	}
	f = s.wireQuery(t.Context(), 3, "katz", map[string][]string{"top": {"3"}, budgetParam: {"60000"}}, false)
	if f.typ != wire.RResult || f.flags != wire.CacheHit {
		t.Fatalf("budgeted repeat: type %d flags %d, want RResult with CacheHit", f.typ, f.flags)
	}
}

// TestWireServeStaleFlag: the binary transport reports a stale serve
// through the CacheStale flag, mirroring X-Cache: stale.
func TestWireServeStaleFlag(t *testing.T) {
	inj := fault.Must("seed 1\nquery.compute error=io after=1")
	s := New(egraph.Figure1Graph(), Config{
		Faults:     inj,
		ServeStale: true,
		Logf:       func(string, ...interface{}) {},
	})
	if f := s.wireQuery(t.Context(), 1, "katz", map[string][]string{"top": {"3"}}, false); f.typ != wire.RResult {
		t.Fatalf("warming wire query failed: type %d", f.typ)
	}
	s.ReplaceGraph(egraph.Figure1Graph())
	f := s.wireQuery(t.Context(), 2, "katz", map[string][]string{"top": {"3"}}, false)
	if f.typ != wire.RResult || f.flags != wire.CacheStale {
		t.Fatalf("stale wire serve: type %d flags %d, want RResult with CacheStale", f.typ, f.flags)
	}
	if wire.CacheName(f.flags) != "stale" {
		t.Fatalf("CacheName(%d) = %q, want stale", f.flags, wire.CacheName(f.flags))
	}
}

// TestStaleOutcomeName guards the Outcome enum's wire spelling.
func TestStaleOutcomeName(t *testing.T) {
	if qcache.Stale.String() != "stale" {
		t.Fatalf("qcache.Stale.String() = %q, want stale", qcache.Stale.String())
	}
}
