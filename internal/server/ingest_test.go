package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/egraph"
	"repro/internal/gen"
	"repro/internal/ingest"
)

// doPost issues one POST against h with an NDJSON body.
func doPost(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// newLiveServer wires a server to a WAL-less ingest log that only
// folds when the test says so.
func newLiveServer(t *testing.T, g *egraph.IntEvolvingGraph, cfg ingest.Config) (*Server, *ingest.Log) {
	t.Helper()
	srv := New(g, Config{Logf: func(string, ...interface{}) {}})
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = 1 << 30
	}
	if cfg.CompactInterval == 0 {
		cfg.CompactInterval = time.Hour
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	lg, err := ingest.New(srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	srv.AttachIngest(lg)
	return srv, lg
}

// TestIngestEndpointTable drives /ingest/arcs through its status
// space.
func TestIngestEndpointTable(t *testing.T) {
	srv, _ := newLiveServer(t, egraph.Figure1Graph(), ingest.Config{})
	cases := []struct {
		name       string
		body       string
		wantStatus int
	}{
		{"add ok", `{"op":"add","u":2,"v":0,"t":1}`, http.StatusAccepted},
		{"batch ok", "{\"op\":\"stamp\",\"t\":9}\n{\"op\":\"add\",\"u\":0,\"v\":1,\"t\":9}\n", http.StatusAccepted},
		{"remove ok", `{"op":"remove","u":0,"v":1,"t":1}`, http.StatusAccepted},
		{"empty body", "", http.StatusBadRequest},
		{"bad json", `{"op":`, http.StatusBadRequest},
		{"unknown op", `{"op":"merge","u":0,"v":1,"t":1}`, http.StatusBadRequest},
		{"missing t", `{"op":"add","u":0,"v":1}`, http.StatusBadRequest},
		{"missing v", `{"op":"add","u":0,"t":1}`, http.StatusBadRequest},
		{"self loop", `{"op":"add","u":3,"v":3,"t":1}`, http.StatusBadRequest},
		{"unknown label", `{"op":"add","u":0,"v":1,"t":777}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doPost(t, srv, "/ingest/arcs", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("POST %q: status %d, want %d (body %s)", tc.body, rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantStatus == http.StatusAccepted {
				var resp IngestAcceptedResponse
				mustDecode(t, rec.Body.Bytes(), &resp)
				if resp.Accepted < 1 {
					t.Fatalf("accepted = %+v", resp)
				}
			}
		})
	}
	// GET is not allowed.
	rec := doGet(t, srv, "/ingest/arcs")
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("GET /ingest/arcs: %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
}

// TestIngestDisabled asserts the read-only server answers 503 on
// writes and enabled=false on stats.
func TestIngestDisabled(t *testing.T) {
	srv := New(egraph.Figure1Graph(), Config{})
	if rec := doPost(t, srv, "/ingest/arcs", `{"op":"stamp","t":5}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write on read-only server: %d", rec.Code)
	}
	var st IngestStatsResponse
	mustDecode(t, doGet(t, srv, "/ingest/stats").Body.Bytes(), &st)
	if st.Enabled || st.Stats != nil {
		t.Fatalf("read-only ingest stats = %+v", st)
	}
}

// TestIngestBackpressure fills the pending delta and expects 429 with
// a Retry-After header, recovering after a fold.
func TestIngestBackpressure(t *testing.T) {
	srv, lg := newLiveServer(t, egraph.Figure1Graph(), ingest.Config{MaxPending: 2})
	if rec := doPost(t, srv, "/ingest/arcs", "{\"op\":\"add\",\"u\":2,\"v\":0,\"t\":1}\n{\"op\":\"add\",\"u\":2,\"v\":1,\"t\":1}\n"); rec.Code != http.StatusAccepted {
		t.Fatalf("fill: %d %s", rec.Code, rec.Body.String())
	}
	rec := doPost(t, srv, "/ingest/arcs", `{"op":"add","u":0,"v":1,"t":2}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overfill: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	lg.CompactNow()
	if rec := doPost(t, srv, "/ingest/arcs", `{"op":"add","u":0,"v":1,"t":2}`); rec.Code != http.StatusAccepted {
		t.Fatalf("post-fold write: %d", rec.Code)
	}
	var st IngestStatsResponse
	mustDecode(t, doGet(t, srv, "/ingest/stats").Body.Bytes(), &st)
	if !st.Enabled || st.Stats.ThrottledBatches != 1 || st.Stats.Epochs != 1 {
		t.Fatalf("ingest stats = %+v", st.Stats)
	}
}

// TestIngestFoldVisibleToReads is the write-to-read loop: accepted
// events are invisible until the fold, then every read endpoint serves
// the new snapshot and the caches have been invalidated by the
// revision bump.
func TestIngestFoldVisibleToReads(t *testing.T) {
	srv, lg := newLiveServer(t, egraph.Figure1Graph(), ingest.Config{})

	var before StatsResponse
	mustDecode(t, doGet(t, srv, "/stats").Body.Bytes(), &before)
	if rec := doPost(t, srv, "/ingest/arcs", "{\"op\":\"stamp\",\"t\":7}\n{\"op\":\"add\",\"u\":2,\"v\":3,\"t\":7}\n"); rec.Code != http.StatusAccepted {
		t.Fatalf("write: %d", rec.Code)
	}
	var mid StatsResponse
	mustDecode(t, doGet(t, srv, "/stats").Body.Bytes(), &mid)
	if mid.Stamps != before.Stamps || mid.Nodes != before.Nodes {
		t.Fatalf("unfolded write already visible: %+v", mid)
	}
	// Warm the analytics cache on the old snapshot.
	if got := doGet(t, srv, "/components/weak").Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("warmup X-Cache = %q", got)
	}

	if n := lg.CompactNow(); n != 2 {
		t.Fatalf("folded %d events, want 2", n)
	}
	var after StatsResponse
	mustDecode(t, doGet(t, srv, "/stats").Body.Bytes(), &after)
	if after.Stamps != before.Stamps+1 || after.Nodes != 4 {
		t.Fatalf("post-fold stats = %+v, want one more stamp and node 3", after)
	}
	rec := doGet(t, srv, "/components/weak")
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("post-fold X-Cache = %q, want miss (revision bump invalidates)", got)
	}
	if got := rec.Header().Get("X-Graph-Revision"); got != "1" {
		t.Fatalf("post-fold X-Graph-Revision = %q, want 1", got)
	}
	var health HealthResponse
	mustDecode(t, doGet(t, srv, "/healthz").Body.Bytes(), &health)
	if health.GraphRevision != 1 {
		t.Fatalf("healthz revision = %d, want 1", health.GraphRevision)
	}
	// /metrics carries the ingest counters.
	var m MetricsResponse
	mustDecode(t, doGet(t, srv, "/metrics").Body.Bytes(), &m)
	if m.Ingest == nil || m.Ingest.Epochs != 1 || m.Ingest.CompactedEvents != 2 {
		t.Fatalf("metrics ingest = %+v", m.Ingest)
	}
}

// TestReadDuringSwapConsistency extends the PR 3 singleflight hammer
// across snapshot swaps: writers stream mutation batches through the
// live compactor while readers hammer a cached analytics endpoint.
// Every response must be internally consistent with a single revision
// — all responses tagged with one X-Graph-Revision carry byte-identical
// bodies — and the hammer must observe several published epochs with
// zero non-2xx reads.
func TestReadDuringSwapConsistency(t *testing.T) {
	g := gen.Random(gen.RandomConfig{Nodes: 120, Stamps: 5, Edges: 900, Directed: true, Seed: 11})
	srv, _ := newLiveServer(t, g, ingest.Config{
		CompactEvery:    48,
		CompactInterval: 2 * time.Millisecond,
	})

	const (
		readers = 8
		writers = 2
	)
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		byRevision = make(map[string]map[string]bool) // revision → set of bodies
		badStatus  []int
		stop       = make(chan struct{})
	)
	running := func() bool {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	// Stop once the readers have watched enough epochs go by (hard cap
	// 10s so a wedged compactor fails rather than hangs the suite).
	go func() {
		defer close(stop)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			n := len(byRevision)
			mu.Unlock()
			if n >= 4 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Writers toggle deterministic arc sets: adds of fresh sets,
			// removes chasing four cycles behind so they hit arcs whose
			// adds have already folded. Pure re-adds would stop the
			// revision counter — the compactor skips publishing epochs
			// whose delta is structurally a no-op.
			for i := 0; running(); i++ {
				op, phase := "add", i/2
				if i%2 == 1 {
					op, phase = "remove", i/2-4
					if phase < 0 {
						continue
					}
				}
				var b strings.Builder
				for j := 0; j < 16; j++ {
					u := (w*7919 + phase*31 + j*5) % 120
					v := (u + 1 + j) % 120
					if u == v {
						continue
					}
					fmt.Fprintf(&b, "{\"op\":%q,\"u\":%d,\"v\":%d,\"t\":%d}\n", op, u, v, 1+(phase+j)%5)
				}
				rec := doPost(t, srv, "/ingest/arcs", b.String())
				if rec.Code != http.StatusAccepted && rec.Code != http.StatusTooManyRequests {
					mu.Lock()
					badStatus = append(badStatus, rec.Code)
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for running() {
				rec := doGet(t, srv, "/components/sizes?limit=0")
				rev := rec.Header().Get("X-Graph-Revision")
				mu.Lock()
				if rec.Code != http.StatusOK {
					badStatus = append(badStatus, rec.Code)
				} else {
					if byRevision[rev] == nil {
						byRevision[rev] = make(map[string]bool)
					}
					byRevision[rev][rec.Body.String()] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(badStatus) != 0 {
		t.Fatalf("non-OK responses under swap: %v", badStatus)
	}
	if len(byRevision) < 3 {
		t.Fatalf("observed %d revisions, want ≥3 epochs published during the hammer", len(byRevision))
	}
	for rev, bodies := range byRevision {
		if len(bodies) != 1 {
			t.Fatalf("revision %s served %d distinct bodies — torn read across a swap", rev, len(bodies))
		}
	}
	if srv.CacheStats().Misses < 3 {
		t.Fatalf("cache misses = %d, want one per revision", srv.CacheStats().Misses)
	}
}
