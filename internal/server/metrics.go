package server

import (
	"net/http"
	"time"

	"repro/internal/feed"
	"repro/internal/ingest"
	"repro/internal/qcache"
)

// HealthResponse is the wire form of /healthz: liveness plus enough
// shape information for a load balancer or operator to sanity-check
// which graph revision this instance is serving. Status is "ok", or
// "degraded" when a WAL failure poisoned the write path — the process
// stays live (200) because reads keep serving; only ingest 503s.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	GraphRevision uint64  `json:"graphRevision"`
	Nodes         int     `json:"nodes"`
	Stamps        int     `json:"stamps"`
	ActiveNodes   int     `json:"activeTemporalNodes"`
	Degraded      bool    `json:"degraded,omitempty"`
	DegradedCause string  `json:"degradedCause,omitempty"`
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	g := s.Graph()
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		GraphRevision: s.snap.Load().rev,
		Nodes:         g.NumNodes(),
		Stamps:        g.NumStamps(),
		ActiveNodes:   g.NumActiveNodes(),
	}
	if lg := s.ing.Load(); lg != nil {
		if deg, cause := lg.Degraded(); deg {
			resp.Status = "degraded"
			resp.Degraded = true
			resp.DegradedCause = cause
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// MetricsResponse is the wire form of /metrics: request counts per
// endpoint, responses per status class, the result-cache counters
// (hits, misses, singleflight collapses, evictions), the in-flight
// computation gauge, and — when a write path is attached — the ingest
// counters (appended/compacted/throttled events, epoch count,
// compaction latency, WAL totals). cmd/egload reads it to report
// cache hit rate.
type MetricsResponse struct {
	UptimeSeconds    float64          `json:"uptimeSeconds"`
	GraphRevision    uint64           `json:"graphRevision"`
	Requests         map[string]int64 `json:"requests"`
	ResponsesByClass map[string]int64 `json:"responsesByClass"`
	Cache            qcache.Stats     `json:"cache"`
	CacheHitRate     float64          `json:"cacheHitRate"`
	CacheCarried     int64            `json:"cacheCarried"`
	StaleServed      int64            `json:"staleServed,omitempty"`
	InFlight         int64            `json:"inFlight"`
	MaxInFlight      int              `json:"maxInFlight"`
	Ingest           *ingest.Stats    `json:"ingest,omitempty"`
	Wire             WireStats        `json:"wire"`
	Feed             feed.Stats       `json:"feed"`
}

// WireStats are the binary-transport counters of MetricsResponse.
type WireStats struct {
	Connections int64 `json:"connections"` // currently open
	Queries     int64 `json:"queries"`     // TQuery frames served
	Ingest      int64 `json:"ingestBatches"`
	Events      int64 `json:"eventsPushed"`
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	reqs := make(map[string]int64)
	for path, c := range s.requests {
		if n := c.Load(); n > 0 {
			reqs[path] = n
		}
	}
	st := s.cache.Stats()
	resp := MetricsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		// The served snapshot's revision, same source as /healthz and
		// /readyz. The cache's st.Version lags it between ReplaceGraph
		// and the first cached request at the new revision, so it is
		// not a truthful "what am I serving" answer.
		GraphRevision: s.snap.Load().rev,
		Requests:      reqs,
		ResponsesByClass: map[string]int64{
			"2xx": s.class2xx.Load(),
			"4xx": s.class4xx.Load(),
			"5xx": s.class5xx.Load(),
		},
		Cache:        st,
		CacheHitRate: st.HitRate(),
		CacheCarried: s.carried.Load(),
		StaleServed:  s.staleServed.Load(),
		InFlight:     s.inflight.Load(),
		MaxInFlight:  cap(s.gate),
		Wire: WireStats{
			Connections: s.wireConns.Load(),
			Queries:     s.wireQueries.Load(),
			Ingest:      s.wireIngest.Load(),
			Events:      s.wireEvents.Load(),
		},
		Feed: s.hub.Stats(),
	}
	if lg := s.ing.Load(); lg != nil {
		ist := lg.Stats()
		resp.Ingest = &ist
	}
	s.writeJSON(w, http.StatusOK, resp)
}
