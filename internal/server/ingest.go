package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/ingest"
)

// maxIngestBody caps one POST /ingest/arcs request body.
const maxIngestBody = 4 << 20

// maxIngestEvents caps the events one request may carry; larger loads
// should batch client-side (the limit keeps a single request from
// monopolising the pending delta).
const maxIngestEvents = 1 << 16

// AttachIngest connects the write path: POST /ingest/arcs feeds l,
// /ingest/stats and /metrics report its counters, and l's compactor
// publishes fresh snapshots through ReplaceGraph. Attach before
// serving traffic; the Log must treat this server as its only
// Publisher. The first attach also registers the ingest metric
// families; their closures re-read s.ing on every scrape, so tests
// that swap Logs keep truthful counters.
func (s *Server) AttachIngest(l *ingest.Log) {
	s.ing.Store(l)
	s.ingestObsOne.Do(s.registerIngestObs)
}

// Ingest returns the attached write path, or nil for a read-only
// server.
func (s *Server) Ingest() *ingest.Log { return s.ing.Load() }

// wireEvent is the NDJSON wire form of one mutation:
//
//	{"op":"add","u":0,"v":1,"t":5}
//	{"op":"remove","u":0,"v":1,"t":5}
//	{"op":"stamp","t":9}
//
// Fields are pointers so missing keys are distinguishable from zero
// values.
type wireEvent struct {
	Op string `json:"op"`
	U  *int32 `json:"u"`
	V  *int32 `json:"v"`
	T  *int64 `json:"t"`
}

func (we *wireEvent) event(line int) (ingest.Event, error) {
	var e ingest.Event
	switch we.Op {
	case "add":
		e.Op = ingest.AddArc
	case "remove":
		e.Op = ingest.RemoveArc
	case "stamp":
		e.Op = ingest.AddStamp
	default:
		return e, fmt.Errorf("event %d: unknown op %q (want add, remove or stamp)", line, we.Op)
	}
	if we.T == nil {
		return e, fmt.Errorf("event %d: missing t", line)
	}
	e.T = *we.T
	if e.Op != ingest.AddStamp {
		if we.U == nil || we.V == nil {
			return e, fmt.Errorf("event %d: %s needs u and v", line, we.Op)
		}
		e.U, e.V = *we.U, *we.V
	}
	return e, nil
}

// IngestAcceptedResponse is the wire form of a successful POST
// /ingest/arcs: the batch's WAL sequence number and the pending-delta
// depth after buffering it.
type IngestAcceptedResponse struct {
	Accepted int    `json:"accepted"`
	Seq      uint64 `json:"seq"`
	Pending  int64  `json:"pending"`
}

// ingestArcs is POST /ingest/arcs: an NDJSON batch of mutation events,
// validated and applied atomically. 202 on acceptance (the events are
// durable if a WAL is configured, and visible after the next epoch
// fold), 400 on malformed input, 429 with Retry-After when the
// compactor lags, 503 when no write path is attached.
func (s *Server) ingestArcs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST an NDJSON event batch")
		return
	}
	lg := s.ing.Load()
	if lg == nil {
		s.writeError(w, http.StatusServiceUnavailable, "ingest disabled: server started without a write path")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	var events []ingest.Event
	for {
		var we wireEvent
		if err := dec.Decode(&we); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("event %d: bad JSON: %v", len(events), err))
			return
		}
		ev, err := we.event(len(events))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		events = append(events, ev)
		if len(events) > maxIngestEvents {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch exceeds %d events; split it", maxIngestEvents))
			return
		}
	}
	if len(events) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch: POST NDJSON events like {\"op\":\"add\",\"u\":0,\"v\":1,\"t\":5}")
		return
	}
	resp, status, msg := s.acceptBatch(events)
	if status != http.StatusAccepted {
		s.writeError(w, status, msg) // 429/503 carry Retry-After via the envelope writer
		return
	}
	s.writeJSON(w, http.StatusAccepted, resp)
}

// acceptBatch appends one decoded event batch to the write path — the
// transport-neutral half of ingest, shared by the HTTP NDJSON handler
// and the wire loop's TIngest frames. It returns the acceptance
// response and http.StatusAccepted, or the status (and message) the
// failure maps to; wire.CodeFromStatus turns the same status into the
// binary error code, keeping the two transports' errors 1:1.
func (s *Server) acceptBatch(events []ingest.Event) (IngestAcceptedResponse, int, string) {
	lg := s.ing.Load()
	if lg == nil {
		return IngestAcceptedResponse{}, http.StatusServiceUnavailable, "ingest disabled: server started without a write path"
	}
	if len(events) == 0 {
		return IngestAcceptedResponse{}, http.StatusBadRequest, "empty batch"
	}
	if len(events) > maxIngestEvents {
		return IngestAcceptedResponse{}, http.StatusBadRequest,
			fmt.Sprintf("batch exceeds %d events; split it", maxIngestEvents)
	}
	seq, err := lg.Append(events)
	switch {
	case err == nil:
	case errors.Is(err, ingest.ErrBackpressure):
		return IngestAcceptedResponse{}, http.StatusTooManyRequests, "write path saturated: compactor lagging, retry the batch"
	case errors.Is(err, ingest.ErrDegraded):
		// Checked before ErrClosed: ErrDegraded wraps it. Reads keep
		// serving the last published revision; only writes 503.
		return IngestAcceptedResponse{}, http.StatusServiceUnavailable,
			"write path degraded after WAL failure: reads continue, writes rejected"
	case errors.Is(err, ingest.ErrClosed):
		return IngestAcceptedResponse{}, http.StatusServiceUnavailable, "write path closed"
	default:
		return IngestAcceptedResponse{}, http.StatusBadRequest, err.Error()
	}
	return IngestAcceptedResponse{
		Accepted: len(events),
		Seq:      seq,
		Pending:  lg.Stats().PendingEvents,
	}, http.StatusAccepted, ""
}

// CheckpointResponse is the wire form of a successful POST
// /ingest/checkpoint: the bytes written (0 when the newest checkpoint
// already covered every folded batch) and the WAL sequence the
// on-disk checkpoint now covers.
type CheckpointResponse struct {
	Bytes int64  `json:"bytes"`
	Seq   uint64 `json:"seq"`
}

// ingestCheckpoint is POST /ingest/checkpoint: synchronously persist a
// checkpoint covering everything folded so far, bypassing the
// epoch/interval budgets. The soak harness uses it to line up
// mid-write and mid-rename kills; operators use it before planned
// restarts so the next boot replays no tail at all.
func (s *Server) ingestCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST to force a checkpoint")
		return
	}
	lg := s.ing.Load()
	if lg == nil {
		s.writeError(w, http.StatusServiceUnavailable, "ingest disabled: server started without a write path")
		return
	}
	n, err := lg.CheckpointNow()
	if err != nil {
		// Unconfigured path or a failed write — either way the caller
		// can retry once the condition clears, and the WAL stays the
		// source of truth.
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, CheckpointResponse{
		Bytes: n,
		Seq:   lg.Stats().LastCheckpointSeq,
	})
}

// IngestStatsResponse is the wire form of /ingest/stats.
type IngestStatsResponse struct {
	Enabled       bool          `json:"enabled"`
	GraphRevision uint64        `json:"graphRevision"`
	Stats         *ingest.Stats `json:"stats,omitempty"`
}

// ingestStats is GET /ingest/stats: the write-path counters (appended,
// throttled, pending, epochs, compaction latency, WAL totals) plus the
// served graph revision, so an operator or the soak harness can watch
// the compactor keep up.
func (s *Server) ingestStats(w http.ResponseWriter, r *http.Request) {
	resp := IngestStatsResponse{GraphRevision: s.Revision()}
	if lg := s.ing.Load(); lg != nil {
		resp.Enabled = true
		st := lg.Stats()
		resp.Stats = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}
