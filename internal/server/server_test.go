package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/egraph"
	"repro/internal/inc"
)

func get(t *testing.T, h http.Handler, url string, wantStatus int, into interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, rec.Code, wantStatus, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type %q", url, ct)
	}
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
}

func TestStats(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp StatsResponse
	get(t, h, "/stats", http.StatusOK, &resp)
	if resp.Nodes != 3 || resp.Stamps != 3 || resp.StaticEdges != 3 ||
		resp.CausalEdges != 3 || resp.ActiveNodes != 6 || !resp.Directed {
		t.Fatalf("stats = %+v", resp)
	}
	if resp.FirstLabel != 1 || resp.LastLabel != 3 {
		t.Fatalf("labels = %d..%d, want 1..3", resp.FirstLabel, resp.LastLabel)
	}
	if len(resp.EdgesByStamp) != 3 || resp.EdgesByStamp[0] != 1 {
		t.Fatalf("edgesByStamp = %v", resp.EdgesByStamp)
	}
}

func TestBFS(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp BFSResponse
	get(t, h, "/bfs?node=0&stamp=0", http.StatusOK, &resp)
	if len(resp.Reached) != 6 {
		t.Fatalf("reached %d temporal nodes, want 6", len(resp.Reached))
	}
	// Find (2, t3): the paper's Fig. 1 gives distance 3.
	found := false
	for _, e := range resp.Reached {
		if e.Node == 2 && e.Stamp == 2 {
			found = true
			if e.Dist != 3 {
				t.Fatalf("dist((3,t3)) = %d, want 3", e.Dist)
			}
			if e.Label != 3 {
				t.Fatalf("label((3,t3)) = %d, want 3", e.Label)
			}
		}
	}
	if !found {
		t.Fatal("(3,t3) missing from BFS response")
	}
	// Backward BFS from (3,t3) must reach everything in reverse.
	get(t, h, "/bfs?node=2&stamp=2&direction=backward", http.StatusOK, &resp)
	if len(resp.Reached) != 6 {
		t.Fatalf("backward reached %d, want 6", len(resp.Reached))
	}
}

func TestBFSErrors(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	get(t, h, "/bfs?stamp=0", http.StatusBadRequest, nil)                     // missing node
	get(t, h, "/bfs?node=9&stamp=0", http.StatusBadRequest, nil)              // node range
	get(t, h, "/bfs?node=0&stamp=7", http.StatusBadRequest, nil)              // stamp range
	get(t, h, "/bfs?node=0&stamp=0&mode=warp", http.StatusBadRequest, nil)    // bad mode
	get(t, h, "/bfs?node=0&stamp=0&direction=up", http.StatusBadRequest, nil) // bad direction
	get(t, h, "/bfs?node=2&stamp=0", http.StatusNotFound, nil)                // inactive root
}

func TestPath(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp PathResponse
	get(t, h, "/path?from=0,0&to=2,2", http.StatusOK, &resp)
	if resp.Hops != 3 || len(resp.Path) != 4 {
		t.Fatalf("path = %+v, want 3 hops / 4 nodes", resp)
	}
	if resp.Path[0].Node != 0 || resp.Path[3].Node != 2 {
		t.Fatalf("path endpoints wrong: %+v", resp.Path)
	}
	// Unreachable pair → 404.
	get(t, h, "/path?from=2,1&to=0,0", http.StatusNotFound, nil)
	// Malformed pairs → 400.
	get(t, h, "/path?from=00&to=2,2", http.StatusBadRequest, nil)
	get(t, h, "/path?from=0,0,0&to=2,2", http.StatusBadRequest, nil)
	get(t, h, "/path?from=9,0&to=2,2", http.StatusBadRequest, nil)
	get(t, h, "/path?to=2,2", http.StatusBadRequest, nil)
}

func TestReach(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp ReachResponse
	get(t, h, "/reach?node=0&stamp=0", http.StatusOK, &resp)
	if resp.TemporalNodes != 6 || resp.DistinctNodes != 3 || resp.MaxDist != 3 {
		t.Fatalf("reach = %+v", resp)
	}
	get(t, h, "/reach?node=2&stamp=0", http.StatusNotFound, nil) // inactive
}

func TestNeighbors(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp NeighborsResponse
	get(t, h, "/neighbors?node=0&stamp=0", http.StatusOK, &resp)
	// Sec. II-A: forward neighbours of (1,t1) are (2,t1) and (1,t2).
	if len(resp.Neighbors) != 2 {
		t.Fatalf("neighbors = %+v, want 2", resp.Neighbors)
	}
	seen := map[[2]int32]bool{}
	for _, nb := range resp.Neighbors {
		seen[[2]int32{nb.Node, nb.Stamp}] = true
	}
	if !seen[[2]int32{1, 0}] || !seen[[2]int32{0, 1}] {
		t.Fatalf("neighbors = %+v, want (1,0) and (0,1)", resp.Neighbors)
	}
}

func TestCriteria(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp CriteriaResponse
	get(t, h, "/criteria?src=0&dst=2", http.StatusOK, &resp)
	if !resp.Reachable || resp.ShortestHops != 2 || resp.EarliestArrival != 2 ||
		resp.LatestDeparture != 2 || resp.FastestDuration != 0 {
		t.Fatalf("criteria = %+v", resp)
	}
	// Unreachable is 200 with reachable=false — a valid answer.
	get(t, h, "/criteria?src=1&dst=0", http.StatusOK, &resp)
	if resp.Reachable {
		t.Fatalf("criteria(1,0) = %+v, want unreachable", resp)
	}
	// Never-active source node → 404.
	get(t, h, "/criteria?src=2&dst=0", http.StatusOK, &resp) // node 2 is active (t2,t3)
	get(t, h, "/criteria?src=0&dst=9", http.StatusBadRequest, nil)
}

// The handler must be safe for concurrent queries (run with -race).
func TestConcurrentQueries(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				req := httptest.NewRequest(http.MethodGet, "/bfs?node=0&stamp=0", nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d", rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

// TestRetireNotification pins the unpin-tracking contract behind arena
// recycling: a replaced graph is reported retired only after every
// request that could observe it has drained, strictly in FIFO order.
func TestRetireNotification(t *testing.T) {
	g0 := egraph.Figure1Graph()
	s := New(g0, Config{})
	var retired []*egraph.IntEvolvingGraph
	s.NotifyRetired(func(g *egraph.IntEvolvingGraph) { retired = append(retired, g) })

	// No readers: the replaced graph retires immediately.
	g1 := egraph.Figure1Graph()
	s.ReplaceGraph(g1)
	if len(retired) != 1 || retired[0] != g0 {
		t.Fatalf("idle replace: retired %v, want [g0]", retired)
	}

	// A pinned "request" blocks retirement of everything it could see —
	// including graphs published after it was admitted.
	e := s.pinEra()
	g2 := egraph.Figure1Graph()
	s.ReplaceGraph(g2) // retires g1, pinned by e
	g3 := egraph.Figure1Graph()
	s.ReplaceGraph(g3) // retires g2: must wait behind g1's era (FIFO)
	if len(retired) != 1 {
		t.Fatalf("pinned replace leaked retirements: %d", len(retired))
	}
	s.unpinEra(e)
	if len(retired) != 3 || retired[1] != g1 || retired[2] != g2 {
		t.Fatalf("after drain: retired %d graphs, want g1 then g2", len(retired)-1)
	}

	// Republishing the identical graph neither retires nor recycles it.
	before := len(retired)
	s.ReplaceGraph(g3)
	if len(retired) != before {
		t.Fatalf("self-replace retired the live graph")
	}

	// Requests through ServeHTTP pin and unpin transparently.
	var resp StatsResponse
	get(t, s, "/stats", http.StatusOK, &resp)
	if s.curEra.Load().refs.Load() != 0 {
		t.Fatalf("request left a dangling era reference")
	}
}

// twoComponents builds a directed graph with two weak components at one
// stamp: {0,1} and {2,3}, all active at label 10.
func twoComponents() *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 10)
	b.AddEdge(2, 3, 10)
	return b.Build()
}

// xCache issues one GET and returns its X-Cache header, asserting 200.
func xCache(t *testing.T, h http.Handler, url string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d (body %s)", url, rec.Code, rec.Body.String())
	}
	return rec.Header().Get("X-Cache")
}

// swap patches the served graph through the maintainer and publishes
// graph + maintained results atomically, returning the new graph.
func swap(t *testing.T, s *Server, m *inc.Maintainer, g *egraph.IntEvolvingGraph, delta []egraph.ArcDelta) *egraph.IntEvolvingGraph {
	t.Helper()
	ng := egraph.Patch(g, delta)
	s.ReplaceGraphWithAnalytics(ng, m.Apply(g, ng, delta))
	return ng
}

// TestMaintainedCarryOverAcrossSwap pins the qcache × incremental
// interplay (DESIGN.md §13): a revision whose delta provably cannot
// change an entry's answer serves the old entry as an X-Cache hit
// across the graph swap, while entries the delta touches miss and
// recompute under the new revision.
func TestMaintainedCarryOverAcrossSwap(t *testing.T) {
	g := twoComponents()
	m := inc.New(inc.Config{})
	s := New(g, Config{})
	s.PublishAnalytics(m.Prime(g))

	// Warm one closeness entry per component and the weak partition.
	urls := []string{
		"/closeness?node=0&stamp=0", // rooted in component {0,1}
		"/closeness?node=2&stamp=0", // rooted in component {2,3}
		"/components/weak",
	}
	for _, u := range urls {
		if got := xCache(t, s, u); got != "miss" {
			t.Fatalf("cold %s X-Cache = %q, want miss", u, got)
		}
		if got := xCache(t, s, u); got != "hit" {
			t.Fatalf("warm %s X-Cache = %q, want hit", u, got)
		}
	}

	// Epoch 1: a reverse arc inside {2,3}. The partition is unchanged
	// and component {0,1} is untouched, so /components/weak and the
	// closeness entry rooted at node 0 must survive the revision bump;
	// the entry rooted in the touched component must not.
	g = swap(t, s, m, g, []egraph.ArcDelta{{U: 3, V: 2, T: 10, W: 1}})
	if got := xCache(t, s, "/components/weak"); got != "carried" {
		t.Fatalf("partition-preserving swap: /components/weak X-Cache = %q, want carried", got)
	}
	if got := xCache(t, s, "/closeness?node=0&stamp=0"); got != "carried" {
		t.Fatalf("untouched component: closeness X-Cache = %q, want carried", got)
	}
	if got := xCache(t, s, "/closeness?node=2&stamp=0"); got != "miss" {
		t.Fatalf("touched component: closeness X-Cache = %q, want miss", got)
	}
	if c := s.CacheCarried(); c < 2 {
		t.Fatalf("CacheCarried = %d, want ≥ 2", c)
	}

	// Epoch 2: now touch {0,1}. Its closeness entry drops while the
	// freshly recomputed {2,3} entry is the one carried over.
	g = swap(t, s, m, g, []egraph.ArcDelta{{U: 1, V: 0, T: 10, W: 1}})
	if got := xCache(t, s, "/closeness?node=0&stamp=0"); got != "miss" {
		t.Fatalf("touched component after epoch 2: X-Cache = %q, want miss", got)
	}
	if got := xCache(t, s, "/closeness?node=2&stamp=0"); got != "carried" {
		t.Fatalf("untouched component after epoch 2: X-Cache = %q, want carried", got)
	}

	// Epoch 3: merge the components. The partition changes, so nothing
	// carries — every warmed entry misses under the new revision.
	_ = swap(t, s, m, g, []egraph.ArcDelta{{U: 1, V: 2, T: 10, W: 1}})
	for _, u := range urls {
		if got := xCache(t, s, u); got != "miss" {
			t.Fatalf("partition-changing swap: %s X-Cache = %q, want miss", u, got)
		}
	}
}

// TestMaintainedServedEndpoints asserts /components/weak and /katz
// serve the maintained results attached to the snapshot (count from
// the incremental partition, scores at the maintained alpha) and match
// what the same endpoints compute from scratch.
func TestMaintainedServedEndpoints(t *testing.T) {
	g := twoComponents()
	bare := New(g, Config{})
	var wantWeak ComponentsResponse
	get(t, bare, "/components/weak", http.StatusOK, &wantWeak)
	var wantKatz KatzResponse
	get(t, bare, "/katz?top=8", http.StatusOK, &wantKatz)

	m := inc.New(inc.Config{})
	s := New(g, Config{})
	s.PublishAnalytics(m.Prime(g))
	var gotWeak ComponentsResponse
	get(t, s, "/components/weak", http.StatusOK, &gotWeak)
	if gotWeak.Count != wantWeak.Count || gotWeak.Largest != wantWeak.Largest {
		t.Fatalf("maintained weak = %+v, recomputed %+v", gotWeak, wantWeak)
	}
	var gotKatz KatzResponse
	get(t, s, "/katz?top=8", http.StatusOK, &gotKatz)
	if len(gotKatz.Top) != len(wantKatz.Top) {
		t.Fatalf("maintained katz top %d entries, recomputed %d", len(gotKatz.Top), len(wantKatz.Top))
	}
	for i := range gotKatz.Top {
		if d := gotKatz.Top[i].Score - wantKatz.Top[i].Score; d > 1e-9 || d < -1e-9 {
			t.Fatalf("maintained katz[%d] = %+v, recomputed %+v", i, gotKatz.Top[i], wantKatz.Top[i])
		}
	}
}

// TestMaintainedReadDuringSwapRace hammers the served analytics
// endpoints while the maintainer rolls epochs forward and swaps the
// snapshot — the read-during-maintenance interleaving, meaningful
// under -race: readers must always observe a coherent (graph,
// revision, results) triple.
func TestMaintainedReadDuringSwapRace(t *testing.T) {
	g := twoComponents()
	m := inc.New(inc.Config{})
	s := New(g, Config{})
	s.PublishAnalytics(m.Prime(g))

	stop := make(chan struct{})
	done := make(chan struct{})
	urls := []string{
		"/components/weak",
		"/katz?top=4",
		"/closeness?node=0&stamp=0", // (0, stamp 0) stays active throughout
		"/bfs?node=0&stamp=0",
	}
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, urls[i%len(urls)], nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("GET %s: status %d (body %s)", urls[i%len(urls)], rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}

	// Writer: alternate adds and deletes that merge and re-split the
	// components, exercising carry-over and invalidation mid-read.
	for e := 0; e < 40; e++ {
		var delta []egraph.ArcDelta
		if e%2 == 0 {
			delta = []egraph.ArcDelta{{U: 1, V: 2, T: 10, W: 1}, {U: 3, V: 0, T: 20, W: 1}}
		} else {
			delta = []egraph.ArcDelta{{U: 1, V: 2, T: 10, Del: true}, {U: 3, V: 0, T: 20, Del: true}}
		}
		ng := egraph.Patch(g, delta)
		res := m.Apply(g, ng, delta)
		s.ReplaceGraphWithAnalytics(ng, res)
		g = ng
	}
	close(stop)
	for i := 0; i < 4; i++ {
		<-done
	}

	// The maintainer's counters must reflect 40 applied epochs, and the
	// served snapshot must be the last published one.
	if st := m.Stats(); st.Epochs != 40 {
		t.Fatalf("epochs = %d, want 40", st.Epochs)
	}
	if s.Graph() != g {
		t.Fatalf("served graph is not the last published revision")
	}
}
