package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/egraph"
)

func get(t *testing.T, h http.Handler, url string, wantStatus int, into interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, rec.Code, wantStatus, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type %q", url, ct)
	}
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
}

func TestStats(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp StatsResponse
	get(t, h, "/stats", http.StatusOK, &resp)
	if resp.Nodes != 3 || resp.Stamps != 3 || resp.StaticEdges != 3 ||
		resp.CausalEdges != 3 || resp.ActiveNodes != 6 || !resp.Directed {
		t.Fatalf("stats = %+v", resp)
	}
	if resp.FirstLabel != 1 || resp.LastLabel != 3 {
		t.Fatalf("labels = %d..%d, want 1..3", resp.FirstLabel, resp.LastLabel)
	}
	if len(resp.EdgesByStamp) != 3 || resp.EdgesByStamp[0] != 1 {
		t.Fatalf("edgesByStamp = %v", resp.EdgesByStamp)
	}
}

func TestBFS(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp BFSResponse
	get(t, h, "/bfs?node=0&stamp=0", http.StatusOK, &resp)
	if len(resp.Reached) != 6 {
		t.Fatalf("reached %d temporal nodes, want 6", len(resp.Reached))
	}
	// Find (2, t3): the paper's Fig. 1 gives distance 3.
	found := false
	for _, e := range resp.Reached {
		if e.Node == 2 && e.Stamp == 2 {
			found = true
			if e.Dist != 3 {
				t.Fatalf("dist((3,t3)) = %d, want 3", e.Dist)
			}
			if e.Label != 3 {
				t.Fatalf("label((3,t3)) = %d, want 3", e.Label)
			}
		}
	}
	if !found {
		t.Fatal("(3,t3) missing from BFS response")
	}
	// Backward BFS from (3,t3) must reach everything in reverse.
	get(t, h, "/bfs?node=2&stamp=2&direction=backward", http.StatusOK, &resp)
	if len(resp.Reached) != 6 {
		t.Fatalf("backward reached %d, want 6", len(resp.Reached))
	}
}

func TestBFSErrors(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	get(t, h, "/bfs?stamp=0", http.StatusBadRequest, nil)                     // missing node
	get(t, h, "/bfs?node=9&stamp=0", http.StatusBadRequest, nil)              // node range
	get(t, h, "/bfs?node=0&stamp=7", http.StatusBadRequest, nil)              // stamp range
	get(t, h, "/bfs?node=0&stamp=0&mode=warp", http.StatusBadRequest, nil)    // bad mode
	get(t, h, "/bfs?node=0&stamp=0&direction=up", http.StatusBadRequest, nil) // bad direction
	get(t, h, "/bfs?node=2&stamp=0", http.StatusNotFound, nil)                // inactive root
}

func TestPath(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp PathResponse
	get(t, h, "/path?from=0,0&to=2,2", http.StatusOK, &resp)
	if resp.Hops != 3 || len(resp.Path) != 4 {
		t.Fatalf("path = %+v, want 3 hops / 4 nodes", resp)
	}
	if resp.Path[0].Node != 0 || resp.Path[3].Node != 2 {
		t.Fatalf("path endpoints wrong: %+v", resp.Path)
	}
	// Unreachable pair → 404.
	get(t, h, "/path?from=2,1&to=0,0", http.StatusNotFound, nil)
	// Malformed pairs → 400.
	get(t, h, "/path?from=00&to=2,2", http.StatusBadRequest, nil)
	get(t, h, "/path?from=0,0,0&to=2,2", http.StatusBadRequest, nil)
	get(t, h, "/path?from=9,0&to=2,2", http.StatusBadRequest, nil)
	get(t, h, "/path?to=2,2", http.StatusBadRequest, nil)
}

func TestReach(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp ReachResponse
	get(t, h, "/reach?node=0&stamp=0", http.StatusOK, &resp)
	if resp.TemporalNodes != 6 || resp.DistinctNodes != 3 || resp.MaxDist != 3 {
		t.Fatalf("reach = %+v", resp)
	}
	get(t, h, "/reach?node=2&stamp=0", http.StatusNotFound, nil) // inactive
}

func TestNeighbors(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp NeighborsResponse
	get(t, h, "/neighbors?node=0&stamp=0", http.StatusOK, &resp)
	// Sec. II-A: forward neighbours of (1,t1) are (2,t1) and (1,t2).
	if len(resp.Neighbors) != 2 {
		t.Fatalf("neighbors = %+v, want 2", resp.Neighbors)
	}
	seen := map[[2]int32]bool{}
	for _, nb := range resp.Neighbors {
		seen[[2]int32{nb.Node, nb.Stamp}] = true
	}
	if !seen[[2]int32{1, 0}] || !seen[[2]int32{0, 1}] {
		t.Fatalf("neighbors = %+v, want (1,0) and (0,1)", resp.Neighbors)
	}
}

func TestCriteria(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	var resp CriteriaResponse
	get(t, h, "/criteria?src=0&dst=2", http.StatusOK, &resp)
	if !resp.Reachable || resp.ShortestHops != 2 || resp.EarliestArrival != 2 ||
		resp.LatestDeparture != 2 || resp.FastestDuration != 0 {
		t.Fatalf("criteria = %+v", resp)
	}
	// Unreachable is 200 with reachable=false — a valid answer.
	get(t, h, "/criteria?src=1&dst=0", http.StatusOK, &resp)
	if resp.Reachable {
		t.Fatalf("criteria(1,0) = %+v, want unreachable", resp)
	}
	// Never-active source node → 404.
	get(t, h, "/criteria?src=2&dst=0", http.StatusOK, &resp) // node 2 is active (t2,t3)
	get(t, h, "/criteria?src=0&dst=9", http.StatusBadRequest, nil)
}

// The handler must be safe for concurrent queries (run with -race).
func TestConcurrentQueries(t *testing.T) {
	h := Handler(egraph.Figure1Graph())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				req := httptest.NewRequest(http.MethodGet, "/bfs?node=0&stamp=0", nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d", rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

// TestRetireNotification pins the unpin-tracking contract behind arena
// recycling: a replaced graph is reported retired only after every
// request that could observe it has drained, strictly in FIFO order.
func TestRetireNotification(t *testing.T) {
	g0 := egraph.Figure1Graph()
	s := New(g0, Config{})
	var retired []*egraph.IntEvolvingGraph
	s.NotifyRetired(func(g *egraph.IntEvolvingGraph) { retired = append(retired, g) })

	// No readers: the replaced graph retires immediately.
	g1 := egraph.Figure1Graph()
	s.ReplaceGraph(g1)
	if len(retired) != 1 || retired[0] != g0 {
		t.Fatalf("idle replace: retired %v, want [g0]", retired)
	}

	// A pinned "request" blocks retirement of everything it could see —
	// including graphs published after it was admitted.
	e := s.pinEra()
	g2 := egraph.Figure1Graph()
	s.ReplaceGraph(g2) // retires g1, pinned by e
	g3 := egraph.Figure1Graph()
	s.ReplaceGraph(g3) // retires g2: must wait behind g1's era (FIFO)
	if len(retired) != 1 {
		t.Fatalf("pinned replace leaked retirements: %d", len(retired))
	}
	s.unpinEra(e)
	if len(retired) != 3 || retired[1] != g1 || retired[2] != g2 {
		t.Fatalf("after drain: retired %d graphs, want g1 then g2", len(retired)-1)
	}

	// Republishing the identical graph neither retires nor recycles it.
	before := len(retired)
	s.ReplaceGraph(g3)
	if len(retired) != before {
		t.Fatalf("self-replace retired the live graph")
	}

	// Requests through ServeHTTP pin and unpin transparently.
	var resp StatsResponse
	get(t, s, "/stats", http.StatusOK, &resp)
	if s.curEra.Load().refs.Load() != 0 {
		t.Fatalf("request left a dangling era reference")
	}
}
