// End-to-end fault-injection tests (DESIGN.md §17): degraded mode
// after a WAL failure, the Retry-After contract across every retriable
// rejection, and goroutine reclamation when wire peers vanish. Lives
// in package server_test so it can drive the server through egclient.
package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/egclient"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/server"
	"repro/internal/wire"
)

func quiet(string, ...interface{}) {}

// newDegradedCandidate builds a server whose WAL fsync fails with
// ENOSPC on first use: the first accepted batch poisons the write
// path.
func newDegradedCandidate(t *testing.T) *server.Server {
	t.Helper()
	inj := fault.Must("seed 1\nwal.fsync error=disk-full")
	wal, _, err := ingest.OpenWAL(filepath.Join(t.TempDir(), "wal.log"),
		ingest.WALOptions{Policy: ingest.SyncAlways, Faults: inj})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	srv := server.New(denseGraph(), server.Config{Logf: quiet})
	lg, err := ingest.New(srv, ingest.Config{
		WAL:             wal,
		CompactEvery:    1 << 30,
		CompactInterval: time.Hour,
		Logf:            quiet,
	})
	if err != nil {
		t.Fatalf("ingest.New: %v", err)
	}
	t.Cleanup(func() { lg.Close() })
	srv.AttachIngest(lg)
	return srv
}

func postArcs(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest/arcs", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest/arcs: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestDegradedModeReadsKeepServing is the disk-full survival contract
// end to end: the WAL's first fsync fails, the write path poisons
// itself, ingest answers 503 + Retry-After — and reads keep serving
// the last published snapshot while /healthz and eg_degraded report
// the state.
func TestDegradedModeReadsKeepServing(t *testing.T) {
	srv := newDegradedCandidate(t)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)

	if resp, err := http.Get(hs.URL + "/katz?top=3"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("read before fault: %v / %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	// First write: the injected ENOSPC surfaces as degraded-mode 503.
	resp := postArcs(t, hs.URL, `{"op":"add","u":0,"v":5,"t":10}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first write after disk-full: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 must carry Retry-After")
	}

	// So does every later write: the poison is sticky.
	if resp := postArcs(t, hs.URL, `{"op":"stamp","t":99}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second write: status %d, want 503", resp.StatusCode)
	}

	// Reads keep serving — the whole point of degrading instead of
	// dying.
	for _, path := range []string{"/katz?top=3", "/components/weak", "/closeness?node=0&stamp=0"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("read %s while degraded: %v / %v", path, resp, err)
		}
		resp.Body.Close()
	}

	// /healthz stays 200 (the process is live) but reports the state.
	var h server.HealthResponse
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", hresp, err)
	}
	decodeBody(t, hresp, &h)
	if h.Status != "degraded" || !h.Degraded || h.DegradedCause == "" {
		t.Fatalf("healthz = %+v, want status degraded with a cause", h)
	}

	// And the gauge the chaos soak asserts on.
	presp, err := http.Get(hs.URL + "/metrics.prom")
	if err != nil {
		t.Fatalf("metrics.prom: %v", err)
	}
	defer presp.Body.Close()
	prom := readAll(t, presp)
	if !strings.Contains(prom, "eg_degraded 1") {
		t.Fatal("metrics.prom missing eg_degraded 1 while degraded")
	}
}

// TestRetryAfterConsistency is the satellite contract: every retriable
// rejection — backpressure 429, degraded-mode 503, recovery-bootstrap
// 503 — carries the same Retry-After header, so one client backoff
// rule covers all three.
func TestRetryAfterConsistency(t *testing.T) {
	cases := []struct {
		name       string
		handler    func(t *testing.T) http.Handler
		method     string
		path, body string
		wantStatus int
	}{
		{
			name: "backpressure",
			handler: func(t *testing.T) http.Handler {
				srv := server.New(denseGraph(), server.Config{Logf: quiet})
				lg, err := ingest.New(srv, ingest.Config{
					MaxPending:      1,
					CompactEvery:    1 << 30,
					CompactInterval: time.Hour,
					Logf:            quiet,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { lg.Close() })
				srv.AttachIngest(lg)
				// Fill the pending delta so the measured POST is refused.
				if _, err := lg.Append([]ingest.Event{{Op: ingest.AddArc, U: 0, V: 1, T: 10}}); err != nil {
					t.Fatalf("priming append: %v", err)
				}
				return srv
			},
			method:     http.MethodPost,
			path:       "/ingest/arcs",
			body:       `{"op":"add","u":1,"v":2,"t":10}`,
			wantStatus: http.StatusTooManyRequests,
		},
		{
			name: "degraded",
			handler: func(t *testing.T) http.Handler {
				srv := newDegradedCandidate(t)
				hs := httptest.NewServer(srv)
				t.Cleanup(hs.Close)
				postArcs(t, hs.URL, `{"op":"add","u":0,"v":5,"t":10}`) // trip the poison
				return srv
			},
			method:     http.MethodPost,
			path:       "/ingest/arcs",
			body:       `{"op":"stamp","t":42}`,
			wantStatus: http.StatusServiceUnavailable,
		},
		{
			name:       "bootstrap",
			handler:    func(t *testing.T) http.Handler { return server.Bootstrap() },
			method:     http.MethodGet,
			path:       "/katz?top=3",
			wantStatus: http.StatusServiceUnavailable,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := tc.handler(t)
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if got := rec.Header().Get("Retry-After"); got != "1" {
				t.Fatalf("Retry-After = %q, want %q on every retriable rejection", got, "1")
			}
		})
	}
}

// leakCheck snapshots the goroutine count; the returned func asserts
// the count returns to the snapshot (with settling time) — the
// teardown invariant every wire test should hold after its peers
// vanish.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d at baseline, %d after teardown\n%s",
					base, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestWireTeardownReclaimsGoroutines kills wire peers every rude way a
// network can — mid-frame, mid-subscription, with events queued and
// unread — and asserts the server reclaims every per-connection
// goroutine and subscription registration.
func TestWireTeardownReclaimsGoroutines(t *testing.T) {
	srv := server.New(denseGraph(), server.Config{Logf: quiet})
	addr := wireAddr(t, srv)

	// Let the accept loop settle before taking the baseline.
	probe, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("probe dial: %v", err)
	}
	probe.Close()
	time.Sleep(50 * time.Millisecond)
	check := leakCheck(t)

	// Round 1: clients with live subscriptions whose sockets vanish
	// without unsubscribing.
	for i := 0; i < 4; i++ {
		ctx, cancel := testCtx(t)
		c, err := egclient.DialWire(ctx, addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		sub, err := c.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindRevision, Cursor: egclient.CursorLive})
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		srv.ReplaceGraph(denseGraph()) // push one event through the pump
		if _, err := sub.Next(ctx); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		// Abrupt close: no sub.Close, no graceful goodbye.
		c.Close()
		cancel()
	}

	// Round 2: a peer that dies mid-frame — hello, half a header, RST.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	if err := wire.WriteHello(raw); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if err := wire.ReadHello(raw); err != nil {
		t.Fatalf("hello ack: %v", err)
	}
	raw.Write([]byte{0x02, 0x00, 0x00, 0x00, 0x01}) // 5 bytes of a 14-byte header
	raw.Close()

	// Round 3: a subscriber that never reads its events, then vanishes
	// — the server's writer must not stay parked on the dead socket.
	ctx, cancel := testCtx(t)
	c, err := egclient.DialWire(ctx, addr)
	if err != nil {
		t.Fatalf("dial lazy: %v", err)
	}
	if _, err := c.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindRevision, Cursor: egclient.CursorLive}); err != nil {
		t.Fatalf("subscribe lazy: %v", err)
	}
	for i := 0; i < 8; i++ {
		srv.ReplaceGraph(denseGraph())
	}
	c.Close()
	cancel()

	// Every subscription registration must drain...
	deadline := time.Now().Add(5 * time.Second)
	for srv.FeedHub().Stats().Active > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("feed subscriptions leaked: %d still active", srv.FeedHub().Stats().Active)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...and every per-connection goroutine (reader, writer, pumps).
	check()
}

func testCtx(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 10*time.Second)
}

func decodeBody(t *testing.T, resp *http.Response, into interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return string(b)
}
