package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/obs"
)

// This file is the transport-neutral request-decoding layer: every
// cacheable analytics endpoint is one decoder that turns validated
// params into its canonical cache key and compute closure. The HTTP
// handlers (serveCached) and the binary wire loop (server/wire.go)
// both dispatch through cachedDecoders over params built from
// url.Values, so the two transports form provably identical cache keys
// — one qcache entry per answer no matter which transport asked first.

// decoder forms one endpoint's canonical cache key and compute closure
// from validated params, recording validation failures in p.err.
type decoder func(s *Server, p *params) (key string, compute func() (interface{}, error))

// cachedDecoders names every cacheable endpoint. Keys are the HTTP
// path without the leading slash — also the endpoint string a TQuery
// frame carries.
var cachedDecoders = map[string]decoder{
	"components/weak":   decodeComponentsWeak,
	"components/strong": decodeComponentsStrong,
	"components/sizes":  decodeComponentsSizes,
	"influence/greedy":  decodeInfluenceGreedy,
	"closeness":         decodeCloseness,
	"efficiency":        decodeEfficiency,
	"katz":              decodeKatz,
}

// serveCached is the HTTP face of one cacheable endpoint. A request
// carrying an X-Trace header (any value) forces a trace; otherwise the
// tracer's sampler decides. Traced requests record decode → cache →
// compute → encode spans into the /debug/traces ring; untraced ones
// pay only a handful of nil-receiver calls. An X-Budget-Ms header
// declares the client's remaining deadline budget: the request context
// expires with it, and admission control may answer 503 unavailable
// up front when the endpoint's observed p99 no longer fits.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string) {
	tr := s.tracer.Start(r.Header.Get("X-Trace") != "")
	root := tr.Span("serve", obs.RootSpan)
	root.Attr("endpoint", endpoint)
	root.Attr("transport", "http")

	budget, _ := strconv.ParseInt(r.Header.Get("X-Budget-Ms"), 10, 64)
	ctx, cancel := withBudget(r.Context(), budget)
	defer cancel()

	dec := tr.Span("decode", root)
	p := s.params(r)
	key, compute := cachedDecoders[endpoint](s, p)
	dec.End()
	if !s.okParams(w, p) {
		root.End()
		tr.Finish()
		return
	}
	dec.Attr("key", key)
	root.Attr("revision", strconv.FormatUint(p.rev, 10))

	cacheSp := tr.Span("cache", root)
	val, outcome, err := s.runCached(ctx, p, endpoint, key, traceCompute(tr, cacheSp, compute))
	cacheSp.Attr("outcome", outcome.String())
	cacheSp.End()

	w.Header().Set("X-Cache", outcome.String())
	// The revision the answer belongs to: responses carrying the same
	// value are computed from the same graph snapshot, which is what
	// the read-during-swap consistency harness asserts on.
	w.Header().Set("X-Graph-Revision", strconv.FormatUint(p.rev, 10))
	if err != nil {
		s.writeError(w, errStatus(err), err.Error())
		root.End()
		tr.Finish()
		return
	}
	enc := tr.Span("encode", root)
	s.writeJSON(w, http.StatusOK, val)
	enc.End()
	root.End()
	tr.Finish()
}

// traceCompute wraps a compute closure in a "compute" span under
// parent. With a nil trace the span calls are no-ops, so the wrapper
// costs one closure per cache miss.
func traceCompute(tr *obs.Trace, parent obs.SpanRef, compute func() (interface{}, error)) func() (interface{}, error) {
	return func() (interface{}, error) {
		sp := tr.Span("compute", parent)
		defer sp.End()
		return compute()
	}
}

// decodeCached is the wire face: the same decoders over the same
// params representation, minus the http.Request plumbing. The caller
// owns error rendering.
func (s *Server) decodeCached(endpoint string, q url.Values) (*params, string, func() (interface{}, error), error) {
	dec, ok := cachedDecoders[endpoint]
	if !ok {
		return nil, "", nil, fmt.Errorf("no such endpoint %q", endpoint)
	}
	p := s.paramsFor(q)
	key, compute := dec(s, p)
	if p.err != nil {
		return nil, "", nil, p.err
	}
	return p, key, compute, nil
}
