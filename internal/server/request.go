package server

import (
	"fmt"
	"net/http"
	"net/url"
)

// This file is the transport-neutral request-decoding layer: every
// cacheable analytics endpoint is one decoder that turns validated
// params into its canonical cache key and compute closure. The HTTP
// handlers (serveCached) and the binary wire loop (server/wire.go)
// both dispatch through cachedDecoders over params built from
// url.Values, so the two transports form provably identical cache keys
// — one qcache entry per answer no matter which transport asked first.

// decoder forms one endpoint's canonical cache key and compute closure
// from validated params, recording validation failures in p.err.
type decoder func(s *Server, p *params) (key string, compute func() (interface{}, error))

// cachedDecoders names every cacheable endpoint. Keys are the HTTP
// path without the leading slash — also the endpoint string a TQuery
// frame carries.
var cachedDecoders = map[string]decoder{
	"components/weak":   decodeComponentsWeak,
	"components/strong": decodeComponentsStrong,
	"components/sizes":  decodeComponentsSizes,
	"influence/greedy":  decodeInfluenceGreedy,
	"closeness":         decodeCloseness,
	"efficiency":        decodeEfficiency,
	"katz":              decodeKatz,
}

// serveCached is the HTTP face of one cacheable endpoint.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string) {
	p := s.params(r)
	key, compute := cachedDecoders[endpoint](s, p)
	if !s.okParams(w, p) {
		return
	}
	s.cached(w, p, key, compute)
}

// decodeCached is the wire face: the same decoders over the same
// params representation, minus the http.Request plumbing. The caller
// owns error rendering.
func (s *Server) decodeCached(endpoint string, q url.Values) (*params, string, func() (interface{}, error), error) {
	dec, ok := cachedDecoders[endpoint]
	if !ok {
		return nil, "", nil, fmt.Errorf("no such endpoint %q", endpoint)
	}
	p := s.paramsFor(q)
	key, compute := dec(s, p)
	if p.err != nil {
		return nil, "", nil, p.err
	}
	return p, key, compute, nil
}
