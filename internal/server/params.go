package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/egraph"
	"repro/internal/fault"
	"repro/internal/inc"
	"repro/internal/qcache"
)

// params is the one place query parameters are parsed and validated.
// Every accessor records the first failure and returns a zero value
// afterwards, so handlers read all their parameters linearly and check
// once:
//
//	p := s.params(r)
//	root := p.temporalNode("node", "stamp")
//	mode := p.mode()
//	if !s.okParams(w, p) {
//		return
//	}
//
// Validation runs against the graph snapshot captured when the params
// were created, the same snapshot the handler computes over.
type params struct {
	g   *egraph.IntEvolvingGraph
	rev uint64
	res *inc.Results
	q   url.Values
	err error
}

// paramsFor captures query values plus the current (graph, revision,
// maintained-results) snapshot — one atomic load, so the graph a
// handler computes over, the cache revision its result is stored
// under, and the maintained analytics it may serve from can never
// belong to different ReplaceGraph generations. Both transports build
// their params here: HTTP from r.URL.Query(), the wire loop from a
// decoded TQuery — which is what makes the canonical cache keys formed
// downstream provably identical.
func (s *Server) paramsFor(q url.Values) *params {
	snap := s.snap.Load()
	return &params{g: snap.g, rev: snap.rev, res: snap.res, q: q}
}

func (s *Server) params(r *http.Request) *params {
	return s.paramsFor(r.URL.Query())
}

// okParams reports whether parsing succeeded, writing the 400 response
// if it did not.
func (s *Server) okParams(w http.ResponseWriter, p *params) bool {
	if p.err != nil {
		s.writeError(w, http.StatusBadRequest, p.err.Error())
		return false
	}
	return true
}

func (p *params) fail(format string, args ...interface{}) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

// node parses a required node id within [0, NumNodes).
func (p *params) node(key string) int32 {
	raw := p.q.Get(key)
	if raw == "" {
		p.fail("missing parameter %q", key)
		return 0
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 || int(v) >= p.g.NumNodes() {
		p.fail("%s=%q out of range (0..%d)", key, raw, p.g.NumNodes()-1)
		return 0
	}
	return int32(v)
}

// stamp parses a required stamp index within [0, NumStamps).
func (p *params) stamp(key string) int32 {
	raw := p.q.Get(key)
	if raw == "" {
		p.fail("missing parameter %q", key)
		return 0
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 || int(v) >= p.g.NumStamps() {
		p.fail("%s=%q out of range (0..%d)", key, raw, p.g.NumStamps()-1)
		return 0
	}
	return int32(v)
}

// temporalNode parses a (node, stamp) pair from two parameters.
func (p *params) temporalNode(nodeKey, stampKey string) egraph.TemporalNode {
	return egraph.TemporalNode{Node: p.node(nodeKey), Stamp: p.stamp(stampKey)}
}

// pair parses a required "N,S" temporal-node literal (the /path
// endpoint's from/to).
func (p *params) pair(key string) egraph.TemporalNode {
	raw := p.q.Get(key)
	parts := strings.Split(raw, ",")
	if raw == "" || len(parts) != 2 {
		p.fail("%s must be \"node,stamp\", got %q", key, raw)
		return egraph.TemporalNode{}
	}
	node, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 32)
	stamp, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 32)
	if err1 != nil || err2 != nil ||
		node < 0 || int(node) >= p.g.NumNodes() ||
		stamp < 0 || int(stamp) >= p.g.NumStamps() {
		p.fail("%s=%q out of range", key, raw)
		return egraph.TemporalNode{}
	}
	return egraph.TemporalNode{Node: int32(node), Stamp: int32(stamp)}
}

// mode parses the optional causal mode (default allpairs).
func (p *params) mode() egraph.CausalMode {
	switch m := p.q.Get("mode"); m {
	case "", "allpairs":
		return egraph.CausalAllPairs
	case "consecutive":
		return egraph.CausalConsecutive
	default:
		p.fail("unknown mode %q (allpairs or consecutive)", m)
		return egraph.CausalAllPairs
	}
}

// direction parses the optional search direction (default forward).
func (p *params) direction() core.Direction {
	switch d := p.q.Get("direction"); d {
	case "", "forward":
		return core.Forward
	case "backward":
		return core.Backward
	default:
		p.fail("unknown direction %q (forward or backward)", d)
		return core.Forward
	}
}

// intRange parses an optional integer within [min, max], def when
// absent.
func (p *params) intRange(key string, def, min, max int) int {
	raw := p.q.Get(key)
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < min || v > max {
		p.fail("%s=%q out of range (%d..%d)", key, raw, min, max)
		return def
	}
	return v
}

// float parses an optional positive float, def when absent.
func (p *params) float(key string, def float64) float64 {
	raw := p.q.Get(key)
	if raw == "" {
		return def
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || v <= 0 {
		p.fail("%s=%q must be a positive number", key, raw)
		return def
	}
	return v
}

// boolean parses an optional boolean ("true"/"false"/"1"/"0"), def
// when absent.
func (p *params) boolean(key string, def bool) bool {
	raw := p.q.Get(key)
	if raw == "" {
		return def
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		p.fail("%s=%q must be a boolean", key, raw)
		return def
	}
	return v
}

// modeName is the canonical wire name of a causal mode, used in cache
// keys and responses.
func modeName(mode egraph.CausalMode) string {
	if mode == egraph.CausalConsecutive {
		return "consecutive"
	}
	return "allpairs"
}

// errStatus maps a computation error to its HTTP status: an inactive
// root is 404 (the temporal node does not exist in the served graph),
// a panicked computation is an internal 500, a budget rejection or an
// expired/cancelled request context is 503 unavailable (retriable —
// the answer exists, this attempt ran out of time), an injected fault
// is the 503 the real failure it models would be, anything else is a
// 400-class request problem (parameter combinations the computation
// itself rejects, e.g. a diverging Katz alpha).
func errStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrInactiveRoot):
		return http.StatusNotFound
	case errors.Is(err, qcache.ErrPanic):
		return http.StatusInternalServerError
	case errors.Is(err, errBudget),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		fault.IsFault(err):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
