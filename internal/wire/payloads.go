package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/feed"
	"repro/internal/ingest"
)

// MaxIngestEvents bounds one TIngest frame's event count — the same
// split-your-batch contract as the HTTP ingest endpoint.
const MaxIngestEvents = 1 << 16

// AppendIngest encodes a TIngest payload: the event stream in the
// WAL's event encoding (op byte; arcs carry u, v uvarint and t varint;
// stamp registrations carry t only).
func AppendIngest(buf []byte, events []ingest.Event) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	for _, e := range events {
		buf = append(buf, byte(e.Op))
		if e.Op != ingest.AddStamp {
			buf = binary.AppendUvarint(buf, uint64(uint32(e.U)))
			buf = binary.AppendUvarint(buf, uint64(uint32(e.V)))
		}
		buf = binary.AppendVarint(buf, e.T)
	}
	return buf
}

// DecodeIngest decodes a TIngest payload. Operation validity beyond
// the known opcodes (node ranges, label registration) is the ingest
// log's job — the wire layer only guarantees the frame parses.
func DecodeIngest(b []byte) ([]ingest.Event, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	if n > MaxIngestEvents {
		return nil, fmt.Errorf("wire: ingest batch declares %d events (max %d); split it", n, MaxIngestEvents)
	}
	// Every event is at least 2 bytes (op + one varint byte); reject
	// counts the remaining payload cannot possibly hold before
	// allocating for them.
	if n > uint64(len(b)) {
		return nil, ErrTruncated
	}
	events := make([]ingest.Event, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 1 {
			return nil, ErrTruncated
		}
		var e ingest.Event
		e.Op, b = ingest.EventOp(b[0]), b[1:]
		switch e.Op {
		case ingest.AddArc, ingest.RemoveArc:
			var u, v uint64
			if u, b, err = takeUvarint(b); err != nil {
				return nil, err
			}
			if v, b, err = takeUvarint(b); err != nil {
				return nil, err
			}
			if u > math.MaxUint32 || v > math.MaxUint32 {
				return nil, fmt.Errorf("wire: ingest event %d: node id overflows 32 bits", i)
			}
			e.U, e.V = int32(uint32(u)), int32(uint32(v))
		case ingest.AddStamp:
		default:
			return nil, fmt.Errorf("wire: ingest event %d: unknown op %d", i, e.Op)
		}
		if e.T, b, err = takeVarint(b); err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after ingest batch", len(b))
	}
	return events, nil
}

// IngestAccepted is the decoded body of a TIngest acknowledgement —
// the same fields the HTTP 202 response carries.
type IngestAccepted struct {
	Accepted int    `json:"accepted"`
	Seq      uint64 `json:"seq"`
	Pending  int64  `json:"pending"`
}

// AppendSubscribe encodes a TSubscribe payload.
func AppendSubscribe(buf []byte, spec feed.Spec) []byte {
	buf = append(buf, byte(spec.Kind))
	buf = binary.AppendVarint(buf, int64(spec.Node))
	buf = binary.AppendVarint(buf, int64(spec.Stamp))
	return binary.AppendUvarint(buf, spec.Cursor)
}

// DecodeSubscribe decodes a TSubscribe payload. Kind validity is
// checked by feed.Subscribe.
func DecodeSubscribe(b []byte) (feed.Spec, error) {
	var spec feed.Spec
	if len(b) < 1 {
		return spec, ErrTruncated
	}
	spec.Kind, b = feed.Kind(b[0]), b[1:]
	node, b, err := takeVarint(b)
	if err != nil {
		return spec, err
	}
	stamp, b, err := takeVarint(b)
	if err != nil {
		return spec, err
	}
	if node < math.MinInt32 || node > math.MaxInt32 || stamp < math.MinInt32 || stamp > math.MaxInt32 {
		return spec, fmt.Errorf("wire: subscribe node/stamp overflows 32 bits")
	}
	spec.Node, spec.Stamp = int32(node), int32(stamp)
	if spec.Cursor, b, err = takeUvarint(b); err != nil {
		return spec, err
	}
	if len(b) != 0 {
		return spec, fmt.Errorf("wire: %d trailing bytes after subscribe", len(b))
	}
	return spec, nil
}

// AppendEvent encodes an REvent payload: kind, revision, then the
// kind-specific fields. Floats travel as IEEE-754 bits, little-endian,
// like every other fixed-width field of the protocol.
func AppendEvent(buf []byte, e feed.Event) []byte {
	buf = append(buf, byte(e.Kind))
	buf = binary.AppendUvarint(buf, e.Revision)
	switch e.Kind {
	case feed.KindRevision:
		buf = binary.AppendUvarint(buf, uint64(e.Nodes))
		buf = binary.AppendUvarint(buf, uint64(e.Stamps))
		buf = binary.AppendUvarint(buf, uint64(e.ActiveNodes))
	case feed.KindComponents:
		buf = binary.AppendVarint(buf, int64(e.Node))
		buf = binary.AppendVarint(buf, int64(e.Stamp))
		buf = binary.AppendVarint(buf, int64(e.Component))
		buf = binary.AppendVarint(buf, int64(e.Previous))
	case feed.KindKatz:
		buf = binary.AppendVarint(buf, int64(e.Node))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Score))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Delta))
	case feed.KindGap:
		buf = binary.AppendUvarint(buf, e.FromRevision)
	}
	return buf
}

// DecodeEvent decodes an REvent payload.
func DecodeEvent(b []byte) (feed.Event, error) {
	var e feed.Event
	if len(b) < 1 {
		return e, ErrTruncated
	}
	var err error
	e.Kind, b = feed.Kind(b[0]), b[1:]
	if e.Revision, b, err = takeUvarint(b); err != nil {
		return e, err
	}
	takeInt := func(into *int) bool {
		v, rest, terr := takeUvarint(b)
		if terr != nil || v > math.MaxInt32 {
			err = ErrTruncated
			return false
		}
		*into, b = int(v), rest
		return true
	}
	takeI32 := func(into *int32) bool {
		v, rest, terr := takeVarint(b)
		if terr != nil || v < math.MinInt32 || v > math.MaxInt32 {
			err = ErrTruncated
			return false
		}
		*into, b = int32(v), rest
		return true
	}
	takeF64 := func(into *float64) bool {
		if len(b) < 8 {
			err = ErrTruncated
			return false
		}
		*into = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		return true
	}
	switch e.Kind {
	case feed.KindRevision:
		_ = takeInt(&e.Nodes) && takeInt(&e.Stamps) && takeInt(&e.ActiveNodes)
	case feed.KindComponents:
		_ = takeI32(&e.Node) && takeI32(&e.Stamp) && takeI32(&e.Component) && takeI32(&e.Previous)
	case feed.KindKatz:
		_ = takeI32(&e.Node) && takeF64(&e.Score) && takeF64(&e.Delta)
	case feed.KindGap:
		e.FromRevision, b, err = takeUvarint(b)
	default:
		return e, fmt.Errorf("wire: unknown event kind %d", e.Kind)
	}
	if err != nil {
		return e, err
	}
	if len(b) != 0 {
		return e, fmt.Errorf("wire: %d trailing bytes after event", len(b))
	}
	return e, nil
}
