package wire

import (
	"bytes"
	"math"
	"net/url"
	"reflect"
	"testing"

	"repro/internal/feed"
	"repro/internal/ingest"
)

// FuzzWireFrame drives arbitrary bytes through the frame reader and
// every payload decoder behind it: hostile input must yield a clean
// error — never a panic, an oversized allocation, or an out-of-bounds
// read. Anything that does decode must survive a re-encode/re-decode
// round trip, so the codec pairs stay inverses under mutation.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	var hello bytes.Buffer
	_ = WriteHello(&hello)

	seed := func(typ, flags uint8, id uint32, payload []byte) []byte {
		return AppendFrame(append([]byte(nil), hello.Bytes()...), typ, flags, id, payload)
	}
	f.Add(seed(TPing, 0, 1, nil))
	f.Add(seed(TQuery, 0, 2, AppendQuery(nil, "katz", url.Values{"mode": {"allpairs"}, "alpha": {"0.1"}})))
	f.Add(seed(TIngest, 0, 3, AppendIngest(nil, []ingest.Event{
		{Op: ingest.AddStamp, T: 4},
		{Op: ingest.AddArc, U: 0, V: 1, T: 4},
		{Op: ingest.RemoveArc, U: 1, V: 0, T: -2},
	})))
	f.Add(seed(TSubscribe, 0, 4, AppendSubscribe(nil, feed.Spec{Kind: feed.KindComponents, Node: 7, Stamp: 1, Cursor: 12})))
	f.Add(seed(RResult, CacheHit, 2, AppendResult(nil, 42, []byte(`{"count":1}`))))
	f.Add(seed(RError, 0, 2, AppendError(nil, CodeBackpressure, 9, "pending delta full", "retry the batch")))
	f.Add(seed(REvent, 0, 4, AppendEvent(nil, feed.Event{Kind: feed.KindKatz, Revision: 7, Node: 9, Score: 3.5, Delta: 0.25})))
	f.Add(seed(REvent, 0, 4, AppendEvent(nil, feed.Event{Kind: feed.KindGap, Revision: 64, FromRevision: 2})))

	corrupt := seed(TQuery, 0, 5, AppendQuery(nil, "closeness", url.Values{"node": {"3"}}))
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add(seed(TQuery, 0, 6, nil)[:helloLen+headerLen-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		if err := ReadHello(r); err != nil {
			return
		}
		fr := NewReader(r)
		for i := 0; i < 64; i++ {
			frame, err := fr.ReadFrame()
			if err != nil {
				return
			}
			fuzzPayload(t, frame)
		}
	})
}

// fuzzPayload exercises the payload decoder matching the frame type and
// asserts the round-trip property on success.
func fuzzPayload(t *testing.T, frame Frame) {
	switch frame.Type {
	case TQuery:
		endpoint, params, err := DecodeQuery(frame.Payload)
		if err != nil {
			return
		}
		re := AppendQuery(nil, endpoint, params)
		ep2, p2, err := DecodeQuery(re)
		if err != nil || ep2 != endpoint || !reflect.DeepEqual(p2, params) {
			t.Fatalf("query round-trip diverged: %v / %q %v vs %q %v", err, endpoint, params, ep2, p2)
		}
	case TIngest:
		events, err := DecodeIngest(frame.Payload)
		if err != nil {
			return
		}
		got, err := DecodeIngest(AppendIngest(nil, events))
		if err != nil || !reflect.DeepEqual(got, events) {
			t.Fatalf("ingest round-trip diverged: %v", err)
		}
	case TSubscribe:
		spec, err := DecodeSubscribe(frame.Payload)
		if err != nil {
			return
		}
		got, err := DecodeSubscribe(AppendSubscribe(nil, spec))
		if err != nil || got != spec {
			t.Fatalf("subscribe round-trip diverged: %v / %+v vs %+v", err, spec, got)
		}
	case RResult:
		rev, body, err := DecodeResult(frame.Payload)
		if err != nil {
			return
		}
		rev2, body2, err := DecodeResult(AppendResult(nil, rev, body))
		if err != nil || rev2 != rev || !bytes.Equal(body2, body) {
			t.Fatalf("result round-trip diverged: %v", err)
		}
	case RError:
		code, rev, msg, detail, err := DecodeError(frame.Payload)
		if err != nil {
			return
		}
		c2, r2, m2, d2, err := DecodeError(AppendError(nil, code, rev, msg, detail))
		if err != nil || c2 != code || r2 != rev || m2 != msg || d2 != detail {
			t.Fatalf("error round-trip diverged: %v", err)
		}
	case REvent:
		ev, err := DecodeEvent(frame.Payload)
		if err != nil {
			return
		}
		got, err := DecodeEvent(AppendEvent(nil, ev))
		if err != nil {
			t.Fatalf("event re-decode failed: %v", err)
		}
		// NaN scores compare unequal to themselves; normalise before
		// the equality check.
		if math.IsNaN(ev.Score) && math.IsNaN(got.Score) {
			ev.Score, got.Score = 0, 0
		}
		if math.IsNaN(ev.Delta) && math.IsNaN(got.Delta) {
			ev.Delta, got.Delta = 0, 0
		}
		if got != ev {
			t.Fatalf("event round-trip diverged: %+v vs %+v", ev, got)
		}
	}
}
