// Package wire defines the EGWP binary wire protocol of the query
// service: versioned, length-framed, CRC'd request/response records in
// the same framing discipline as the egio binary format, the ingest
// WAL and the EGCP checkpoint layout — no external serialisation
// dependency. internal/server serves it on a second listener alongside
// HTTP (DESIGN.md §15); egclient speaks it from the client side.
//
// Connection layout:
//
//	hello    both directions, once: magic "EGWP" | version u8 | 3 reserved
//	frame    type u8 | flags u8 | id u32 | length u32 | crc u32 | payload
//
// All integers are little-endian; varints use encoding/binary's
// (u)varint forms. The id field correlates requests with responses —
// the server echoes it, so a client may pipeline — and names the
// subscription a pushed event belongs to. The CRC is CRC32-IEEE over
// the payload; length is bounded by MaxPayload so a corrupt or hostile
// frame can never force a huge allocation.
//
// Client frame types:
//
//	TQuery       endpoint string | uvarint nparams | nparams × (key, value)
//	TIngest      uvarint nevents | nevents × event (WAL event encoding)
//	TSubscribe   kind u8 | varint node | varint stamp | uvarint cursor
//	TPing        empty
//
// Server frame types:
//
//	RResult      flags = cache outcome | uvarint revision | JSON body
//	RError       code u8 | uvarint revision | error string | detail string
//	RSubscribed  uvarint current revision
//	REvent       feed event (EncodeEvent)
//	RPong        empty
//
// Query responses carry the same JSON document the HTTP endpoint
// returns, computed through the same canonical-params layer and stored
// under the same qcache key — the cross-transport equivalence suite in
// internal/server asserts deep-equal bodies and a shared cache entry.
// Error codes map 1:1 onto the HTTP error envelope (Code.HTTPStatus /
// CodeFromStatus round-trip).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"sort"
	"time"
)

// Protocol identity.
const (
	// Magic opens the hello exchange in both directions.
	Magic = "EGWP"
	// Version is the protocol version this package speaks. A peer
	// advertising a different version is rejected at hello time.
	Version = 1
	// helloLen is the byte length of the hello record.
	helloLen = 8
	// headerLen is the byte length of a frame header.
	headerLen = 14
	// MaxPayload bounds one frame's payload so a corrupt length field
	// cannot force a huge allocation (queries and events are small;
	// ingest batches are bounded server-side well below this).
	MaxPayload = 8 << 20
)

// Frame types. Client-originated types have the high bit clear,
// server-originated types have it set.
const (
	TQuery     = 0x01
	TIngest    = 0x02
	TSubscribe = 0x03
	TPing      = 0x04

	RResult     = 0x81
	RError      = 0x82
	REvent      = 0x83
	RSubscribed = 0x84
	RPong       = 0x85
)

// Cache outcomes carried in an RResult's flags byte (the binary form
// of the X-Cache header). Three bits: values 6–7 are reserved.
const (
	CacheMiss      = 0
	CacheHit       = 1
	CacheCollapsed = 2
	CacheNone      = 3 // uncached endpoint
	CacheCarried   = 4 // carried across a revision swap by inc maintenance
	CacheStale     = 5 // serve-stale fallback: last good answer, compute failed or budget ran out
)

// FlagTrace on a TQuery requests a forced trace for that query — the
// binary twin of the HTTP X-Trace header. The server records the
// query's span tree into its /debug/traces ring regardless of
// sampling.
const FlagTrace = 0x80

// CacheName returns the X-Cache wire name of an RResult flags value
// ("" for CacheNone, matching the absent header on uncached HTTP
// endpoints).
func CacheName(flags uint8) string {
	switch flags & 0x7 {
	case CacheHit:
		return "hit"
	case CacheCollapsed:
		return "collapsed"
	case CacheNone:
		return ""
	case CacheCarried:
		return "carried"
	case CacheStale:
		return "stale"
	default:
		return "miss"
	}
}

// Code is the transport-neutral error code shared by the HTTP error
// envelope and RError frames: one enum, two spellings (string in JSON,
// u8 on the wire), mapped 1:1.
type Code uint8

const (
	CodeOK Code = iota
	CodeBadRequest
	CodeNotFound
	CodeMethodNotAllowed
	CodeBackpressure
	CodeInternal
	CodeUnavailable
)

// String returns the JSON envelope spelling of the code.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeBadRequest:
		return "bad_request"
	case CodeNotFound:
		return "not_found"
	case CodeMethodNotAllowed:
		return "method_not_allowed"
	case CodeBackpressure:
		return "backpressure"
	case CodeUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// HTTPStatus maps the code onto the status the HTTP transport answers.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK:
		return 200
	case CodeBadRequest:
		return 400
	case CodeNotFound:
		return 404
	case CodeMethodNotAllowed:
		return 405
	case CodeBackpressure:
		return 429
	case CodeUnavailable:
		return 503
	default:
		return 500
	}
}

// CodeFromStatus inverts HTTPStatus for the statuses the service
// emits; unknown statuses in the 4xx class map to CodeBadRequest and
// everything else to CodeInternal.
func CodeFromStatus(status int) Code {
	switch status {
	case 200, 202:
		return CodeOK
	case 400:
		return CodeBadRequest
	case 404:
		return CodeNotFound
	case 405:
		return CodeMethodNotAllowed
	case 429:
		return CodeBackpressure
	case 503:
		return CodeUnavailable
	default:
		if status >= 400 && status < 500 {
			return CodeBadRequest
		}
		return CodeInternal
	}
}

// Frame is one decoded protocol frame. Payload aliases the decoder's
// buffer only until the next ReadFrame call; callers that retain it
// must copy.
type Frame struct {
	Type    uint8
	Flags   uint8
	ID      uint32
	Payload []byte
}

// Protocol errors.
var (
	// ErrBadHello reports a hello with the wrong magic or version.
	ErrBadHello = errors.New("wire: bad hello (wrong magic or protocol version)")
	// ErrFrameTooLarge reports a frame whose declared length exceeds
	// MaxPayload.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxPayload")
	// ErrChecksum reports a payload whose CRC does not match its
	// header.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrTruncated reports a structurally truncated payload.
	ErrTruncated = errors.New("wire: truncated payload")
)

// WriteHello writes the 8-byte hello record.
func WriteHello(w io.Writer) error {
	var h [helloLen]byte
	copy(h[:], Magic)
	h[4] = Version
	_, err := w.Write(h[:])
	return err
}

// ReadHello consumes and validates the peer's hello record.
func ReadHello(r io.Reader) error {
	var h [helloLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return fmt.Errorf("wire: reading hello: %w", err)
	}
	if string(h[:4]) != Magic || h[4] != Version {
		return fmt.Errorf("%w: got magic %q version %d, want %q version %d",
			ErrBadHello, h[:4], h[4], Magic, Version)
	}
	return nil
}

// AppendFrame encodes one frame onto buf and returns the extended
// slice — the write-side primitive shared by server and client.
func AppendFrame(buf []byte, typ, flags uint8, id uint32, payload []byte) []byte {
	var h [headerLen]byte
	h[0] = typ
	h[1] = flags
	binary.LittleEndian.PutUint32(h[2:6], id)
	binary.LittleEndian.PutUint32(h[6:10], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[10:14], crc32.ChecksumIEEE(payload))
	buf = append(buf, h[:]...)
	return append(buf, payload...)
}

// Reader decodes frames from a stream, reusing one payload buffer.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader wraps r in a frame decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// ReadFrame reads and validates the next frame. The returned Payload
// aliases an internal buffer valid until the next ReadFrame.
func (fr *Reader) ReadFrame() (Frame, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(fr.br, h[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(h[6:10])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: frame body: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(h[10:14]) {
		return Frame{}, ErrChecksum
	}
	return Frame{
		Type:    h[0],
		Flags:   h[1],
		ID:      binary.LittleEndian.Uint32(h[2:6]),
		Payload: payload,
	}, nil
}

// --- payload primitives ---

// appendString encodes a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// takeString decodes a length-prefixed string, bounding it by the
// remaining payload so a corrupt length cannot over-allocate.
func takeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, ErrTruncated
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[sz:], nil
}

func takeVarint(b []byte) (int64, []byte, error) {
	v, sz := binary.Varint(b)
	if sz <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[sz:], nil
}

// --- query payloads ---

// maxQueryParams bounds a TQuery's parameter count (the service's
// endpoints use at most a handful).
const maxQueryParams = 64

// AppendQuery encodes a TQuery payload: the endpoint name plus its
// parameters in sorted-key order. Sorting makes the encoded request
// canonical, but the server does not rely on it — cache-key
// canonicalisation happens in the shared request-decoding layer, so
// both transports form identical keys from parsed values, not from
// request bytes.
func AppendQuery(buf []byte, endpoint string, params url.Values) []byte {
	buf = appendString(buf, endpoint)
	keys := make([]string, 0, len(params))
	n := 0
	for k, vs := range params {
		if len(vs) > 0 {
			keys = append(keys, k)
			n++
		}
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, params.Get(k))
	}
	return buf
}

// DecodeQuery decodes a TQuery payload.
func DecodeQuery(b []byte) (endpoint string, params url.Values, err error) {
	endpoint, b, err = takeString(b)
	if err != nil {
		return "", nil, err
	}
	n, b, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > maxQueryParams {
		return "", nil, fmt.Errorf("wire: query declares %d params (max %d)", n, maxQueryParams)
	}
	params = make(url.Values, n)
	for i := uint64(0); i < n; i++ {
		var k, v string
		if k, b, err = takeString(b); err != nil {
			return "", nil, err
		}
		if v, b, err = takeString(b); err != nil {
			return "", nil, err
		}
		params.Set(k, v)
	}
	if len(b) != 0 {
		return "", nil, fmt.Errorf("wire: %d trailing bytes after query", len(b))
	}
	return endpoint, params, nil
}

// AppendResult encodes an RResult payload: the revision the body was
// computed at, then the JSON document itself.
func AppendResult(buf []byte, revision uint64, body []byte) []byte {
	buf = binary.AppendUvarint(buf, revision)
	return append(buf, body...)
}

// DecodeResult splits an RResult payload into revision and JSON body.
func DecodeResult(b []byte) (revision uint64, body []byte, err error) {
	revision, b, err = takeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	return revision, b, nil
}

// AppendError encodes an RError payload.
func AppendError(buf []byte, code Code, revision uint64, msg, detail string) []byte {
	buf = append(buf, byte(code))
	buf = binary.AppendUvarint(buf, revision)
	buf = appendString(buf, msg)
	return appendString(buf, detail)
}

// DecodeError decodes an RError payload.
func DecodeError(b []byte) (code Code, revision uint64, msg, detail string, err error) {
	if len(b) < 1 {
		return 0, 0, "", "", ErrTruncated
	}
	code, b = Code(b[0]), b[1:]
	if revision, b, err = takeUvarint(b); err != nil {
		return 0, 0, "", "", err
	}
	if msg, b, err = takeString(b); err != nil {
		return 0, 0, "", "", err
	}
	if detail, _, err = takeString(b); err != nil {
		return 0, 0, "", "", err
	}
	return code, revision, msg, detail, nil
}

// RemoteError is an RError decoded client-side: the server-assigned
// code plus the same message/detail/revision the HTTP envelope
// carries.
type RemoteError struct {
	Code     Code
	Message  string
	Detail   string
	Revision uint64
	// RetryAfter is the server's Retry-After hint on retriable
	// failures (429/503 over HTTP; zero when the transport carries
	// none). Retrying clients treat it as their backoff floor.
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}
