package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"repro/internal/feed"
	"repro/internal/ingest"
)

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatalf("WriteHello: %v", err)
	}
	if buf.Len() != helloLen {
		t.Fatalf("hello is %d bytes, want %d", buf.Len(), helloLen)
	}
	if err := ReadHello(&buf); err != nil {
		t.Fatalf("ReadHello: %v", err)
	}
}

func TestHelloRejectsBadMagicAndVersion(t *testing.T) {
	for _, tc := range []struct {
		name string
		raw  []byte
	}{
		{"wrong magic", []byte("NOPE\x01\x00\x00\x00")},
		{"wrong version", []byte("EGWP\x63\x00\x00\x00")},
	} {
		if err := ReadHello(bytes.NewReader(tc.raw)); !errors.Is(err, ErrBadHello) {
			t.Errorf("%s: got %v, want ErrBadHello", tc.name, err)
		}
	}
	if err := ReadHello(bytes.NewReader([]byte("EG"))); err == nil {
		t.Errorf("short hello: want error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload")
	var stream []byte
	stream = AppendFrame(stream, TQuery, 0, 7, payload)
	stream = AppendFrame(stream, RResult, CacheHit, 7, nil)

	r := NewReader(bytes.NewReader(stream))
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	if f.Type != TQuery || f.Flags != 0 || f.ID != 7 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame 1 mismatch: %+v", f)
	}
	f, err = r.ReadFrame()
	if err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	if f.Type != RResult || f.Flags != CacheHit || f.ID != 7 || len(f.Payload) != 0 {
		t.Fatalf("frame 2 mismatch: %+v", f)
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: got %v, want EOF", err)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	good := AppendFrame(nil, TQuery, 0, 1, []byte("abcdef"))

	flipped := append([]byte(nil), good...)
	flipped[headerLen] ^= 0xff // first payload byte
	if _, err := NewReader(bytes.NewReader(flipped)).ReadFrame(); !errors.Is(err, ErrChecksum) {
		t.Errorf("payload flip: got %v, want ErrChecksum", err)
	}

	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[6:10], MaxPayload+1)
	if _, err := NewReader(bytes.NewReader(huge)).ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge length: got %v, want ErrFrameTooLarge", err)
	}

	if _, err := NewReader(bytes.NewReader(good[:len(good)-2])).ReadFrame(); err == nil {
		t.Errorf("truncated body: want error")
	}
}

func TestQueryRoundTripCanonical(t *testing.T) {
	params := url.Values{"mode": {"allpairs"}, "limit": {"5"}, "alpha": {"0.1"}}
	a := AppendQuery(nil, "katz", params)
	b := AppendQuery(nil, "katz", url.Values{"alpha": {"0.1"}, "limit": {"5"}, "mode": {"allpairs"}})
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding is not canonical across map orders")
	}
	endpoint, got, err := DecodeQuery(a)
	if err != nil {
		t.Fatalf("DecodeQuery: %v", err)
	}
	if endpoint != "katz" || !reflect.DeepEqual(got, params) {
		t.Fatalf("got %q %v, want katz %v", endpoint, got, params)
	}
}

func TestQueryRejectsMalformed(t *testing.T) {
	good := AppendQuery(nil, "stats", url.Values{"k": {"v"}})
	if _, _, err := DecodeQuery(append(good, 0)); err == nil {
		t.Errorf("trailing byte: want error")
	}
	if _, _, err := DecodeQuery(good[:len(good)-1]); err == nil {
		t.Errorf("truncated: want error")
	}
	many := appendString(nil, "stats")
	many = binary.AppendUvarint(many, maxQueryParams+1)
	if _, _, err := DecodeQuery(many); err == nil {
		t.Errorf("too many params: want error")
	}
	// String length claiming more than the remaining payload must not
	// over-allocate or read out of bounds.
	lying := binary.AppendUvarint(nil, 1<<40)
	if _, _, err := DecodeQuery(lying); !errors.Is(err, ErrTruncated) {
		t.Errorf("lying string length: got %v, want ErrTruncated", err)
	}
}

func TestResultAndErrorRoundTrip(t *testing.T) {
	body := []byte(`{"count":3}`)
	rev, got, err := DecodeResult(AppendResult(nil, 42, body))
	if err != nil || rev != 42 || !bytes.Equal(got, body) {
		t.Fatalf("result round-trip: rev=%d body=%q err=%v", rev, got, err)
	}

	code, rev, msg, detail, err := DecodeError(AppendError(nil, CodeBackpressure, 9, "pending delta full", "retry"))
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if code != CodeBackpressure || rev != 9 || msg != "pending delta full" || detail != "retry" {
		t.Fatalf("error round-trip mismatch: %v %d %q %q", code, rev, msg, detail)
	}
	if _, _, _, _, err := DecodeError(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty error payload: got %v, want ErrTruncated", err)
	}
}

func TestCodeMapping(t *testing.T) {
	codes := []Code{CodeOK, CodeBadRequest, CodeNotFound, CodeMethodNotAllowed, CodeBackpressure, CodeInternal, CodeUnavailable}
	seen := map[string]bool{}
	for _, c := range codes {
		if got := CodeFromStatus(c.HTTPStatus()); got != c {
			t.Errorf("%v: HTTPStatus=%d round-trips to %v", c, c.HTTPStatus(), got)
		}
		if s := c.String(); seen[s] {
			t.Errorf("duplicate code name %q", s)
		} else {
			seen[s] = true
		}
	}
	if CodeFromStatus(202) != CodeOK {
		t.Errorf("202 should map to CodeOK")
	}
	if CodeFromStatus(418) != CodeBadRequest {
		t.Errorf("unknown 4xx should map to CodeBadRequest")
	}
	if CodeFromStatus(502) != CodeInternal {
		t.Errorf("unknown 5xx should map to CodeInternal")
	}
}

func TestRemoteError(t *testing.T) {
	e := &RemoteError{Code: CodeNotFound, Message: "no such node", Detail: "node=9", Revision: 3}
	if got := e.Error(); !strings.Contains(got, "not_found") || !strings.Contains(got, "node=9") {
		t.Fatalf("Error() = %q", got)
	}
}

func TestIngestRoundTrip(t *testing.T) {
	events := []ingest.Event{
		{Op: ingest.AddArc, U: 0, V: 1, T: -5},
		{Op: ingest.AddStamp, T: 1 << 40},
		{Op: ingest.RemoveArc, U: math.MaxInt32, V: 2, T: 0},
	}
	got, err := DecodeIngest(AppendIngest(nil, events))
	if err != nil {
		t.Fatalf("DecodeIngest: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("got %+v, want %+v", got, events)
	}

	empty, err := DecodeIngest(AppendIngest(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
}

func TestIngestRejectsMalformed(t *testing.T) {
	over := binary.AppendUvarint(nil, MaxIngestEvents+1)
	if _, err := DecodeIngest(over); err == nil {
		t.Errorf("oversized count: want error")
	}
	// Count far beyond the payload must fail before allocation.
	lying := binary.AppendUvarint(nil, MaxIngestEvents)
	if _, err := DecodeIngest(lying); !errors.Is(err, ErrTruncated) {
		t.Errorf("lying count: got %v, want ErrTruncated", err)
	}
	bad := binary.AppendUvarint(nil, 1)
	bad = append(bad, 0x7f) // unknown opcode
	bad = binary.AppendVarint(bad, 0)
	if _, err := DecodeIngest(bad); err == nil {
		t.Errorf("unknown op: want error")
	}
	good := AppendIngest(nil, []ingest.Event{{Op: ingest.AddArc, U: 1, V: 2, T: 3}})
	if _, err := DecodeIngest(append(good, 0)); err == nil {
		t.Errorf("trailing bytes: want error")
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	specs := []feed.Spec{
		{Kind: feed.KindRevision, Cursor: 0},
		{Kind: feed.KindComponents, Node: 12, Stamp: -1, Cursor: 99},
		{Kind: feed.KindKatz, Node: 3, Cursor: feed.CursorLive},
	}
	for _, want := range specs {
		got, err := DecodeSubscribe(AppendSubscribe(nil, want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
	if _, err := DecodeSubscribe(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty subscribe: got %v, want ErrTruncated", err)
	}
}

func TestEventRoundTrip(t *testing.T) {
	events := []feed.Event{
		{Kind: feed.KindRevision, Revision: 5, Nodes: 100, Stamps: 8, ActiveNodes: 73},
		{Kind: feed.KindComponents, Revision: 6, Node: 4, Stamp: 2, Component: 1, Previous: -1},
		{Kind: feed.KindKatz, Revision: 7, Node: 9, Score: 3.25, Delta: -0.5},
		{Kind: feed.KindGap, Revision: 64, FromRevision: 2},
	}
	for _, want := range events {
		got, err := DecodeEvent(AppendEvent(nil, want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

func TestEventNaNScore(t *testing.T) {
	e := feed.Event{Kind: feed.KindKatz, Revision: 1, Node: 0, Score: math.NaN()}
	got, err := DecodeEvent(AppendEvent(nil, e))
	if err != nil {
		t.Fatalf("DecodeEvent: %v", err)
	}
	if !math.IsNaN(got.Score) {
		t.Fatalf("NaN score did not survive the wire: %v", got.Score)
	}
}

func TestEventRejectsMalformed(t *testing.T) {
	if _, err := DecodeEvent([]byte{0xee}); err == nil {
		t.Errorf("unknown kind: want error")
	}
	good := AppendEvent(nil, feed.Event{Kind: feed.KindKatz, Revision: 1, Node: 2, Score: 1, Delta: 1})
	if _, err := DecodeEvent(good[:len(good)-1]); err == nil {
		t.Errorf("truncated: want error")
	}
	if _, err := DecodeEvent(append(good, 0)); err == nil {
		t.Errorf("trailing bytes: want error")
	}
}
