package egio

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/egraph"
)

// DOTOptions configures Graphviz export.
type DOTOptions struct {
	// Mode selects which causal edges to draw.
	Mode egraph.CausalMode
	// IncludeInactive also draws inactive temporal nodes (dashed grey),
	// as in the paper's Fig. 4 which shows both.
	IncludeInactive bool
	// Name is the graph name (default "evolving").
	Name string
	// Label optionally maps node ids to display labels.
	Label func(v int32) string
}

// WriteDOT renders the evolving graph in Graphviz DOT form, mirroring
// the paper's Fig. 4 layout: one cluster per stamp containing that
// snapshot's nodes and static edges, causal edges drawn dashed across
// clusters. Pipe through `dot -Tsvg` to draw.
func WriteDOT(w io.Writer, g *egraph.IntEvolvingGraph, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "evolving"
	}
	label := opts.Label
	if label == nil {
		label = func(v int32) string { return fmt.Sprintf("%d", v) }
	}
	edgeOp := "->"
	graphKind := "digraph"
	if !g.Directed() {
		edgeOp = "--"
		graphKind = "graph"
	}
	fmt.Fprintf(bw, "%s %q {\n", graphKind, name)
	fmt.Fprintf(bw, "\trankdir=LR;\n\tnode [shape=circle];\n")

	id := func(v int32, t int) string { return fmt.Sprintf("n%d_t%d", v, t) }
	for t := 0; t < g.NumStamps(); t++ {
		fmt.Fprintf(bw, "\tsubgraph \"cluster_t%d\" {\n", t)
		fmt.Fprintf(bw, "\t\tlabel=\"t=%d\";\n", g.TimeLabel(t))
		act := g.ActiveNodes(t)
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if act.Get(int(v)) {
				fmt.Fprintf(bw, "\t\t%s [label=%q, style=filled, fillcolor=palegreen];\n",
					id(v, t), label(v))
			} else if opts.IncludeInactive {
				fmt.Fprintf(bw, "\t\t%s [label=%q, style=dashed, color=grey];\n",
					id(v, t), label(v))
			}
		}
		g.VisitEdges(int32(t), func(u, v int32, wt float64) bool {
			if g.Weighted() {
				fmt.Fprintf(bw, "\t\t%s %s %s [label=\"%g\"];\n", id(u, t), edgeOp, id(v, t), wt)
			} else {
				fmt.Fprintf(bw, "\t\t%s %s %s;\n", id(u, t), edgeOp, id(v, t))
			}
			return true
		})
		fmt.Fprintf(bw, "\t}\n")
	}
	// Causal edges across clusters (always directed; use -> even for
	// undirected graphs via explicit dir attribute in graph mode).
	causal := func(v int32, s, t int32) {
		if g.Directed() {
			fmt.Fprintf(bw, "\t%s -> %s [style=dashed, constraint=false];\n",
				id(v, int(s)), id(v, int(t)))
		} else {
			fmt.Fprintf(bw, "\t%s -- %s [style=dashed, constraint=false];\n",
				id(v, int(s)), id(v, int(t)))
		}
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		st := g.ActiveStamps(v)
		switch opts.Mode {
		case egraph.CausalAllPairs:
			for i := 0; i < len(st); i++ {
				for j := i + 1; j < len(st); j++ {
					causal(v, st[i], st[j])
				}
			}
		case egraph.CausalConsecutive:
			for i := 0; i+1 < len(st); i++ {
				causal(v, st[i], st[i+1])
			}
		}
	}
	fmt.Fprintf(bw, "}\n")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("egio: dot: %w", err)
	}
	return nil
}
