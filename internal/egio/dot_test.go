package egio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/egraph"
)

func TestWriteDOTFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{IncludeInactive: true}); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{
		"digraph \"evolving\"",
		"cluster_t0", "cluster_t1", "cluster_t2",
		"n0_t0 -> n1_t0;",              // static 1→2@t1
		"n0_t1 -> n2_t1;",              // static 1→3@t2
		"n1_t2 -> n2_t2;",              // static 2→3@t3
		"n0_t0 -> n0_t1 [style=dashed", // causal (1,t1)→(1,t2)
		"n1_t0 -> n1_t2 [style=dashed", // causal (2,t1)→(2,t3), paper-typo corrected
		"fillcolor=palegreen",
		"style=dashed, color=grey", // inactive nodes drawn
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Exactly 3 causal edges in all-pairs mode on Fig. 1.
	if got := strings.Count(dot, "style=dashed, constraint=false"); got != 3 {
		t.Fatalf("causal edge count = %d, want 3", got)
	}
}

func TestWriteDOTOptions(t *testing.T) {
	g := egraph.Figure1Graph()
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Name:  "fig1",
		Label: func(v int32) string { return string(rune('A' + v)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.Contains(dot, `digraph "fig1"`) {
		t.Fatal("custom name missing")
	}
	if !strings.Contains(dot, `label="A"`) || !strings.Contains(dot, `label="C"`) {
		t.Fatal("custom labels missing")
	}
	if strings.Contains(dot, "color=grey") {
		t.Fatal("inactive nodes drawn without IncludeInactive")
	}
}

func TestWriteDOTUndirectedWeighted(t *testing.T) {
	b := egraph.NewWeightedBuilder(false)
	b.AddWeightedEdge(0, 1, 1, 2.5)
	b.AddWeightedEdge(0, 1, 2, 1)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.Contains(dot, "graph \"evolving\"") || strings.Contains(dot, "digraph") {
		t.Fatal("undirected graph should use graph/-- syntax")
	}
	if !strings.Contains(dot, `label="2.5"`) {
		t.Fatal("weights missing")
	}
	if !strings.Contains(dot, "n0_t0 -- n0_t1 [style=dashed") {
		t.Fatal("undirected causal edge missing")
	}
}

func TestWriteDOTConsecutiveMode(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 1, 3)
	g := b.Build()
	var all, cons bytes.Buffer
	if err := WriteDOT(&all, g, DOTOptions{Mode: egraph.CausalAllPairs}); err != nil {
		t.Fatal(err)
	}
	if err := WriteDOT(&cons, g, DOTOptions{Mode: egraph.CausalConsecutive}); err != nil {
		t.Fatal(err)
	}
	ca := strings.Count(all.String(), "constraint=false")
	cc := strings.Count(cons.String(), "constraint=false")
	if ca != 6 || cc != 4 { // 2 nodes × C(3,2) vs 2 nodes × 2
		t.Fatalf("causal edges all=%d cons=%d, want 6 and 4", ca, cc)
	}
}
