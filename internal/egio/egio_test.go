package egio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
0 1 1

1 2 3
0 2 2
`
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStamps() != 3 || g.StaticEdgeCount() != 3 {
		t.Fatalf("stamps=%d edges=%d", g.NumStamps(), g.StaticEdgeCount())
	}
	if g.Weighted() {
		t.Fatal("unweighted input produced weighted graph")
	}
	if !g.HasEdge(0, 1, 0) || !g.HasEdge(0, 2, 1) || !g.HasEdge(1, 2, 2) {
		t.Fatal("edges wrong")
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 1 2.5\n1 2 1\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weighted line should force weighted graph")
	}
	w := g.OutWeights(0, 0)
	if len(w) != 1 || w[0] != 2.5 {
		t.Fatalf("weights = %v", w)
	}
	// Unweighted lines default to 1.
	w2 := g.OutWeights(1, 0)
	if len(w2) != 1 || w2[0] != 1 {
		t.Fatalf("default weight = %v", w2)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{
		"0 1\n",       // too few fields
		"0 1 2 3 4\n", // too many fields
		"x 1 1\n",     // bad source
		"0 y 1\n",     // bad target
		"0 1 z\n",     // bad time
		"0 1 1 w\n",   // bad weight
		"-1 1 1\n",    // negative id
	} {
		if _, err := ReadEdgeList(strings.NewReader(bad), true); err == nil {
			t.Fatalf("input %q should fail", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64, directed, weighted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var b *egraph.Builder
		if weighted {
			b = egraph.NewWeightedBuilder(directed)
		} else {
			b = egraph.NewBuilder(directed)
		}
		n := 2 + rng.Intn(8)
		for e := 0; e < rng.Intn(30); e++ {
			b.AddWeightedEdge(int32(rng.Intn(n)), int32(rng.Intn(n)),
				int64(1+rng.Intn(4)), float64(1+rng.Intn(5)))
		}
		b.AddWeightedEdge(0, 1, 1, 2)
		g := b.Build()

		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf, directed)
		if err != nil {
			return false
		}
		return graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := func(seed int64, directed, weighted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var b *egraph.Builder
		if weighted {
			b = egraph.NewWeightedBuilder(directed)
		} else {
			b = egraph.NewBuilder(directed)
		}
		n := 2 + rng.Intn(8)
		for e := 0; e < rng.Intn(30); e++ {
			b.AddWeightedEdge(int32(rng.Intn(n)), int32(rng.Intn(n)),
				int64(1+rng.Intn(4)), float64(1+rng.Intn(5)))
		}
		b.AddWeightedEdge(0, 1, 1, 2)
		g := b.Build()

		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			return false
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if g2.Directed() != g.Directed() {
			return false
		}
		return graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad json should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"edges":[{"u":-1,"v":0,"t":1}]}`)); err == nil {
		t.Fatal("negative id should fail")
	}
}

func TestDocumentShape(t *testing.T) {
	g := egraph.Figure1Graph()
	doc := ToDocument(g)
	if doc.Directed != true || len(doc.Edges) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	g2, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("document round trip changed graph")
	}
}

// graphsEqual compares snapshots, labels, weights and activity.
func graphsEqual(a, b *egraph.IntEvolvingGraph) bool {
	if a.NumStamps() != b.NumStamps() || a.StaticEdgeCount() != b.StaticEdgeCount() ||
		a.NumActiveNodes() != b.NumActiveNodes() {
		return false
	}
	for t := 0; t < a.NumStamps(); t++ {
		if a.TimeLabel(t) != b.TimeLabel(t) {
			return false
		}
		equal := true
		a.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			if !b.HasEdge(u, v, int32(t)) {
				equal = false
				return false
			}
			return true
		})
		if !equal {
			return false
		}
	}
	return true
}
