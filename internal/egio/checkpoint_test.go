package egio

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/egraph"
	"repro/internal/gen"
)

func testCheckpointGraphs(t *testing.T) map[string]*egraph.IntEvolvingGraph {
	t.Helper()
	gs := map[string]*egraph.IntEvolvingGraph{
		"figure1": egraph.Figure1Graph(),
		"directed": gen.Random(gen.RandomConfig{
			Nodes: 40, Stamps: 5, Edges: 300, Directed: true, Seed: 1,
		}),
		"undirected": gen.Random(gen.RandomConfig{
			Nodes: 30, Stamps: 4, Edges: 200, Directed: false, Seed: 2,
		}),
	}
	wb := egraph.NewWeightedBuilder(true)
	wb.AddWeightedEdge(0, 1, 10, 0.5)
	wb.AddWeightedEdge(1, 2, 10, 2.25)
	wb.AddWeightedEdge(2, 0, 20, -1)
	wb.AddWeightedEdge(3, 1, 30, 7)
	gs["weighted"] = wb.Build()
	// A stamp whose last arc was removed: empty ptr rows, empty bitset.
	base := gs["directed"]
	var dels []egraph.ArcDelta
	base.VisitEdges(2, func(u, v int32, w float64) bool {
		dels = append(dels, egraph.ArcDelta{U: u, V: v, T: base.TimeLabel(2), Del: true})
		return true
	})
	gs["emptyStamp"] = egraph.Patch(base, dels)
	return gs
}

func writeTestCheckpoint(t *testing.T, g *egraph.IntEvolvingGraph, meta CheckpointMeta) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.ckpt")
	n, err := WriteCheckpoint(path, g, meta)
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if int64(len(data)) != n {
		t.Fatalf("WriteCheckpoint reported %d bytes, file has %d", n, len(data))
	}
	return path, data
}

func eqS[T comparable](t *testing.T, what string, a, b []T) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: differs at index %d: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// requireIdentical asserts the two graphs are bit-identical across the
// whole storage surface: snapshots, activity rows and the flat CSR.
func requireIdentical(t *testing.T, a, b *egraph.IntEvolvingGraph) {
	t.Helper()
	ra, rb := a.Raw(), b.Raw()
	if ra.Directed != rb.Directed || ra.Weighted != rb.Weighted ||
		ra.NumNodes != rb.NumNodes || ra.NumActive != rb.NumActive || len(ra.Snaps) != len(rb.Snaps) {
		t.Fatalf("shape differs: %+v vs %+v", ra, rb)
	}
	eqS(t, "times", ra.Times, rb.Times)
	for si := range ra.Snaps {
		sa, sb := ra.Snaps[si], rb.Snaps[si]
		eqS(t, "outPtr", sa.OutPtr, sb.OutPtr)
		eqS(t, "outAdj", sa.OutAdj, sb.OutAdj)
		eqS(t, "outW", sa.OutW, sb.OutW)
		eqS(t, "inPtr", sa.InPtr, sb.InPtr)
		eqS(t, "inAdj", sa.InAdj, sb.InAdj)
		eqS(t, "inW", sa.InW, sb.InW)
		if sa.Edges != sb.Edges || !sa.Active.Equal(sb.Active) {
			t.Fatalf("stamp %d: edges/active differ", si)
		}
	}
	for v := int32(0); int(v) < ra.NumNodes; v++ {
		eqS(t, "activeAt", a.ActiveStamps(v), b.ActiveStamps(v))
	}
	ca, cb := a.CSR(), b.CSR()
	if ca.N != cb.N || ca.T != cb.T {
		t.Fatalf("CSR shape: %dx%d vs %dx%d", ca.N, ca.T, cb.N, cb.T)
	}
	eqS(t, "csr outPtr", ca.OutPtr, cb.OutPtr)
	eqS(t, "csr outAdj", ca.OutAdj, cb.OutAdj)
	eqS(t, "csr inPtr", ca.InPtr, cb.InPtr)
	eqS(t, "csr inAdj", ca.InAdj, cb.InAdj)
	eqS(t, "csr actPtr", ca.ActPtr, cb.ActPtr)
	eqS(t, "csr actStamps", ca.ActStamps, cb.ActStamps)
	eqS(t, "csr actPos", ca.ActPos, cb.ActPos)
	if !ca.Active.Equal(cb.Active) {
		t.Fatal("CSR active bitsets differ")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for name, g := range testCheckpointGraphs(t) {
		t.Run(name, func(t *testing.T) {
			meta := CheckpointMeta{WALSeq: 42, Labels: []int64{10, 20, 5, 10}}
			_, data := writeTestCheckpoint(t, g, meta)
			got, info, err := ParseCheckpoint(data)
			if err != nil {
				t.Fatalf("ParseCheckpoint: %v", err)
			}
			if info.WALSeq != 42 {
				t.Fatalf("WALSeq: got %d, want 42", info.WALSeq)
			}
			eqS(t, "labels", info.Labels, []int64{5, 10, 20})
			if info.Nodes != g.NumNodes() || info.Stamps != g.NumStamps() ||
				info.Directed != g.Directed() || info.Weighted != g.Weighted() {
				t.Fatalf("info shape: %+v", info)
			}
			requireIdentical(t, g, got)
			// A parsed graph must keep answering after patching — the
			// recovery path folds the WAL tail onto it.
			if g.NumStamps() > 0 {
				delta := []egraph.ArcDelta{{U: 0, V: int32(g.NumNodes() - 1), T: g.TimeLabel(0)}}
				patched := egraph.Patch(got, delta)
				if !patched.HasEdge(0, int32(g.NumNodes()-1), 0) && g.Directed() {
					t.Fatal("patch over a parsed graph lost the new arc")
				}
				_ = egraph.BuildFlatCSR(patched, egraph.CSRBuildOptions{})
			}
		})
	}
}

func TestOpenCheckpointMmap(t *testing.T) {
	g := gen.Random(gen.RandomConfig{Nodes: 50, Stamps: 6, Edges: 500, Directed: true, Seed: 9})
	path, _ := writeTestCheckpoint(t, g, CheckpointMeta{WALSeq: 7})
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	if ck.Info.WALSeq != 7 || ck.Info.Nodes != 50 {
		t.Fatalf("info: %+v", ck.Info)
	}
	requireIdentical(t, g, ck.Graph)
	if err := ck.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := OpenCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("OpenCheckpoint on a missing file succeeded")
	}
}

// ckptEntry mirrors one section-table row, parsed back out of the file
// bytes so corruption tests can aim at specific sections.
type ckptEntry struct {
	kind        uint32
	crc         uint32
	off, length uint64
}

func readTable(t *testing.T, data []byte) []ckptEntry {
	t.Helper()
	ne := binary.NativeEndian
	cnt := int(ne.Uint32(data[12:16]))
	out := make([]ckptEntry, cnt)
	for i := range out {
		e := data[ckptHeaderLen+i*ckptSecEntryLen:]
		out[i] = ckptEntry{
			kind: ne.Uint32(e[0:4]), crc: ne.Uint32(e[4:8]),
			off: ne.Uint64(e[8:16]), length: ne.Uint64(e[16:24]),
		}
	}
	return out
}

// fixCRCs recomputes the header CRC, the named section's CRC, the
// table CRC and the footer echoes, so corruption tests can forge
// CRC-valid structural garbage and prove the validation pass catches
// it without the checksums' help.
func fixCRCs(data []byte, kind uint32) {
	ne := binary.NativeEndian
	cnt := int(ne.Uint32(data[12:16]))
	tl := cnt * ckptSecEntryLen
	for i := 0; i < cnt; i++ {
		e := data[ckptHeaderLen+i*ckptSecEntryLen:]
		if ne.Uint32(e[0:4]) == kind {
			off, ln := ne.Uint64(e[8:16]), ne.Uint64(e[16:24])
			ne.PutUint32(e[4:8], crc32.ChecksumIEEE(data[off:off+ln]))
		}
	}
	ne.PutUint32(data[60:64], crc32.ChecksumIEEE(data[:60]))
	ne.PutUint32(data[ckptHeaderLen+tl:], crc32.ChecksumIEEE(data[ckptHeaderLen:ckptHeaderLen+tl]))
	fo := len(data) - ckptFooterLen
	ne.PutUint32(data[fo+4:], ne.Uint32(data[60:64]))
	ne.PutUint32(data[fo+8:], ne.Uint32(data[ckptHeaderLen+tl:]))
	ne.PutUint32(data[fo+12:], crc32.ChecksumIEEE(data[fo:fo+12]))
}

// TestCheckpointCorruption flips one byte per section (plus the header,
// table and footer) and asserts each yields a named, offset-carrying
// error — never a panic, never a graph.
func TestCheckpointCorruption(t *testing.T) {
	g := gen.Random(gen.RandomConfig{Nodes: 25, Stamps: 4, Edges: 160, Directed: true, Seed: 3})
	_, orig := writeTestCheckpoint(t, g, CheckpointMeta{WALSeq: 3, Labels: []int64{1, 2}})

	check := func(t *testing.T, data []byte, wantSub string) {
		t.Helper()
		gg, info, err := ParseCheckpoint(data)
		if err == nil {
			t.Fatalf("corrupt checkpoint parsed: %+v", info)
		}
		if gg != nil || info != nil {
			t.Fatal("non-nil result alongside error")
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}
	flip := func(at uint64) []byte {
		data := append([]byte(nil), orig...)
		data[at] ^= 0xff
		return data
	}

	// One byte per section, aimed at the middle so padding is never hit.
	for _, e := range readTable(t, orig) {
		if e.length == 0 {
			continue
		}
		name := ckptSectionName(e.kind)
		t.Run("section-"+name, func(t *testing.T) {
			check(t, flip(e.off+e.length/2), "section "+name+" CRC mismatch")
		})
	}
	t.Run("magic", func(t *testing.T) { check(t, flip(0), "bad magic at offset 0") })
	t.Run("headerCRC", func(t *testing.T) { check(t, flip(20), "header CRC mismatch at offset 60") })
	t.Run("tableCRC", func(t *testing.T) { check(t, flip(ckptHeaderLen+2), "table CRC mismatch") })
	t.Run("footer", func(t *testing.T) { check(t, flip(uint64(len(orig)-1)), "footer CRC mismatch") })
	t.Run("truncated", func(t *testing.T) {
		check(t, orig[:len(orig)-1], "length mismatch")
	})
	t.Run("version", func(t *testing.T) {
		data := append([]byte(nil), orig...)
		binary.NativeEndian.PutUint16(data[4:6], 99)
		fixCRCs(data, 0)
		check(t, data, "unsupported version at offset 4: got 99")
	})
	t.Run("bom", func(t *testing.T) {
		data := append([]byte(nil), orig...)
		binary.NativeEndian.PutUint32(data[8:12], 0x04030201)
		fixCRCs(data, 0)
		check(t, data, "byte-order mark at offset 8")
	})

	// CRC-valid structural garbage: patch a value and re-checksum
	// everything, so only the validation pass stands between the file
	// and an out-of-bounds slice.
	forge := func(kind uint32, rel uint64, val byte) []byte {
		data := append([]byte(nil), orig...)
		for _, e := range readTable(t, data) {
			if e.kind == kind {
				data[e.off+rel] = val
			}
		}
		fixCRCs(data, kind)
		return data
	}
	t.Run("forged-adjacency", func(t *testing.T) {
		check(t, forge(secSnapOutAdj, 0, 0x7f), "out of range")
	})
	t.Run("forged-actPos", func(t *testing.T) {
		check(t, forge(secActPos, 3, 0x7f), "actPos section")
	})
	t.Run("forged-numActive", func(t *testing.T) {
		data := append([]byte(nil), orig...)
		binary.NativeEndian.PutUint64(data[32:40], binary.NativeEndian.Uint64(data[32:40])+1)
		fixCRCs(data, 0)
		// numActive drives the actStamps length check before any count.
		check(t, data, "egio: checkpoint")
	})
}

// TestCheckpointEveryPrefix parses every byte-length prefix of a valid
// checkpoint: all must fail cleanly, none may panic, and only the full
// file validates. (The recovery-level counterpart that folds the WAL
// on top lives in internal/ingest.)
func TestCheckpointEveryPrefix(t *testing.T) {
	g := egraph.Figure1Graph()
	_, data := writeTestCheckpoint(t, g, CheckpointMeta{WALSeq: 1})
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := ParseCheckpoint(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes validated", cut, len(data))
		}
	}
	if _, _, err := ParseCheckpoint(data); err != nil {
		t.Fatalf("full file: %v", err)
	}
}
