//go:build unix

package egio

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping outlives f:
// callers may close the file immediately after a successful map.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmapBytes(b []byte) error { return syscall.Munmap(b) }
