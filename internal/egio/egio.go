// Package egio serialises evolving graphs. Two formats are supported:
//
//   - a whitespace edge-list text format, one "u v t [w]" line per static
//     edge with '#' comments — the lingua franca of graph tooling and the
//     format cmd/egbfs and cmd/citemine consume;
//   - a JSON document (Document) for structured interchange.
//
// Both round-trip exactly: Read(Write(g)) reproduces the same snapshots,
// edges, weights and time labels.
package egio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/egraph"
)

// ReadEdgeList parses the text edge-list format: each non-empty,
// non-comment line is "u v t" or "u v t w" with integer node ids and time
// label, optional float weight. The graph is weighted iff any line
// carries a weight.
func ReadEdgeList(r io.Reader, directed bool) (*egraph.IntEvolvingGraph, error) {
	type edge struct {
		u, v int32
		t    int64
		w    float64
	}
	var edges []edge
	weighted := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("egio: line %d: want 3 or 4 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("egio: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("egio: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		t, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("egio: line %d: bad time %q: %w", lineNo, fields[2], err)
		}
		w := 1.0
		if len(fields) == 4 {
			if w, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("egio: line %d: bad weight %q: %w", lineNo, fields[3], err)
			}
			weighted = true
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("egio: line %d: negative node id", lineNo)
		}
		edges = append(edges, edge{int32(u), int32(v), t, w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("egio: read: %w", err)
	}
	var b *egraph.Builder
	if weighted {
		b = egraph.NewWeightedBuilder(directed)
	} else {
		b = egraph.NewBuilder(directed)
	}
	for _, e := range edges {
		b.AddWeightedEdge(e.u, e.v, e.t, e.w)
	}
	return b.Build(), nil
}

// WriteEdgeList writes g in the text edge-list format, one line per
// static edge in stamp-major order, with weights when g is weighted.
func WriteEdgeList(w io.Writer, g *egraph.IntEvolvingGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# evolving graph: %d nodes, %d stamps, %d static edges\n",
		g.NumNodes(), g.NumStamps(), g.StaticEdgeCount())
	var err error
	for t := int32(0); t < int32(g.NumStamps()) && err == nil; t++ {
		label := g.TimeLabel(int(t))
		g.VisitEdges(t, func(u, v int32, wt float64) bool {
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %d %g\n", u, v, label, wt)
			} else {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, label)
			}
			return err == nil
		})
	}
	if err != nil {
		return fmt.Errorf("egio: write: %w", err)
	}
	return bw.Flush()
}

// Document is the JSON interchange form of an evolving graph.
type Document struct {
	Directed bool       `json:"directed"`
	Weighted bool       `json:"weighted,omitempty"`
	Edges    []EdgeJSON `json:"edges"`
}

// EdgeJSON is one static edge of a Document.
type EdgeJSON struct {
	U int32   `json:"u"`
	V int32   `json:"v"`
	T int64   `json:"t"`
	W float64 `json:"w,omitempty"`
}

// ToDocument converts a graph to its JSON form.
func ToDocument(g *egraph.IntEvolvingGraph) *Document {
	doc := &Document{Directed: g.Directed(), Weighted: g.Weighted()}
	for t := int32(0); t < int32(g.NumStamps()); t++ {
		label := g.TimeLabel(int(t))
		g.VisitEdges(t, func(u, v int32, w float64) bool {
			e := EdgeJSON{U: u, V: v, T: label}
			if g.Weighted() {
				e.W = w
			}
			doc.Edges = append(doc.Edges, e)
			return true
		})
	}
	return doc
}

// FromDocument rebuilds a graph from its JSON form.
func FromDocument(doc *Document) (*egraph.IntEvolvingGraph, error) {
	var b *egraph.Builder
	if doc.Weighted {
		b = egraph.NewWeightedBuilder(doc.Directed)
	} else {
		b = egraph.NewBuilder(doc.Directed)
	}
	for i, e := range doc.Edges {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("egio: edge %d: negative node id", i)
		}
		w := e.W
		if !doc.Weighted || w == 0 {
			w = 1
		}
		b.AddWeightedEdge(e.U, e.V, e.T, w)
	}
	return b.Build(), nil
}

// WriteJSON encodes g as a JSON Document.
func WriteJSON(w io.Writer, g *egraph.IntEvolvingGraph) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ToDocument(g))
}

// ReadJSON decodes a JSON Document into a graph.
func ReadJSON(r io.Reader) (*egraph.IntEvolvingGraph, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("egio: json: %w", err)
	}
	return FromDocument(&doc)
}
