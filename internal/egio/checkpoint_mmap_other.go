//go:build !unix

package egio

import (
	"errors"
	"os"
)

// No mmap on this platform: OpenCheckpoint falls back to reading the
// file onto the heap, which keeps the format and validation identical.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	return nil, false, errors.New("egio: mmap unsupported on this platform")
}

func munmapBytes(b []byte) error { return nil }
