package egio

import (
	"bytes"
	"testing"

	"repro/internal/egraph"
)

// FuzzReadEdgeList asserts the text parser never panics and that every
// successfully parsed graph survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1 1\n"), true)
	f.Add([]byte("# c\n0 1 1 2.5\n1 2 2\n"), false)
	f.Add([]byte("0 1\n"), true)
	f.Add([]byte("9999999999999999999 1 1\n"), true)
	f.Add([]byte("0 1 1\n0 1 1\n1 0 1\n"), false)
	f.Fuzz(func(t *testing.T, data []byte, directed bool) {
		g, err := ReadEdgeList(bytes.NewReader(data), directed)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf, directed)
		if err != nil {
			t.Fatalf("reread of own output: %v", err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("round trip changed graph")
		}
	})
}

// FuzzReadBinary asserts the binary decoder never panics on corrupt
// input and that valid encodings round trip.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, egraph.Figure1Graph()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("EVGR"))
	f.Add([]byte("EVGR\x01\x03\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("reread of own output: %v", err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("round trip changed graph")
		}
	})
}

// FuzzReadJSON asserts the JSON decoder handles arbitrary input.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"directed":true,"edges":[{"u":0,"v":1,"t":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"edges":[{"u":-1,"v":0,"t":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("reread of own output: %v", err)
		}
	})
}
