package egio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/egraph"
)

// FuzzReadEdgeList asserts the text parser never panics and that every
// successfully parsed graph survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1 1\n"), true)
	f.Add([]byte("# c\n0 1 1 2.5\n1 2 2\n"), false)
	f.Add([]byte("0 1\n"), true)
	f.Add([]byte("9999999999999999999 1 1\n"), true)
	f.Add([]byte("0 1 1\n0 1 1\n1 0 1\n"), false)
	f.Fuzz(func(t *testing.T, data []byte, directed bool) {
		g, err := ReadEdgeList(bytes.NewReader(data), directed)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf, directed)
		if err != nil {
			t.Fatalf("reread of own output: %v", err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("round trip changed graph")
		}
	})
}

// FuzzReadBinary asserts the binary decoder never panics on corrupt
// input and that valid encodings round trip.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, egraph.Figure1Graph()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("EVGR"))
	f.Add([]byte("EVGR\x01\x03\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("reread of own output: %v", err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("round trip changed graph")
		}
	})
}

// FuzzReadJSON asserts the JSON decoder handles arbitrary input.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"directed":true,"edges":[{"u":0,"v":1,"t":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"edges":[{"u":-1,"v":0,"t":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("reread of own output: %v", err)
		}
	})
}

// checkpointSeed writes g to a temp file and returns the raw bytes for
// seeding FuzzCheckpointRead.
func checkpointSeed(f *testing.F, g *egraph.IntEvolvingGraph, meta CheckpointMeta) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	if _, err := WriteCheckpoint(path, g, meta); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzCheckpointRead asserts that arbitrary or mutated checkpoint bytes
// yield a clean error — never a panic and never a graph that can index
// out of bounds. Any input that does validate is walked across the
// whole query surface (snapshots, activity rows, the flat CSR's causal
// arcs in every mode) precisely because the validation pass, not the
// CRCs, is what guarantees those accesses are in bounds: a crafted
// file can carry correct checksums over inconsistent content.
func FuzzCheckpointRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	f.Add([]byte("EGCP\x01\x00\x00\x00\x04\x03\x02\x01"))
	valid := checkpointSeed(f, egraph.Figure1Graph(), CheckpointMeta{WALSeq: 9, Labels: []int64{1, 2, 3}})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	wb := egraph.NewWeightedBuilder(false)
	wb.AddWeightedEdge(0, 1, 5, 1.5)
	wb.AddWeightedEdge(1, 2, 7, -2)
	f.Add(checkpointSeed(f, wb.Build(), CheckpointMeta{}))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, info, err := ParseCheckpoint(data)
		if err != nil {
			if g != nil || info != nil {
				t.Fatal("non-nil result alongside error")
			}
			return
		}
		n, st := g.NumNodes(), g.NumStamps()
		if n*st > 1<<15 {
			return // plausible-but-huge dims would make the walk itself slow
		}
		for si := int32(0); int(si) < st; si++ {
			g.VisitEdges(si, func(u, v int32, w float64) bool {
				if !g.HasEdge(u, v, si) {
					t.Fatalf("visited edge %d->%d@%d not reported by HasEdge", u, v, si)
				}
				return true
			})
			for v := int32(0); int(v) < n; v++ {
				for _, w := range g.OutNeighbors(v, si) {
					_ = g.IsActive(w, si)
				}
				_ = g.InNeighbors(v, si)
				if g.Weighted() {
					_ = g.OutWeights(v, si)
				}
			}
		}
		for v := int32(0); int(v) < n; v++ {
			for _, s := range g.ActiveStamps(v) {
				if !g.IsActive(v, s) {
					t.Fatalf("activeAt row lists inactive (%d, %d)", v, s)
				}
			}
			_ = g.NextActiveStamp(v, 0)
			_ = g.PrevActiveStamp(v, int32(st)-1)
		}
		csr := g.CSR()
		for id := int32(0); int(id) < csr.Size(); id++ {
			for _, a := range csr.OutArcs(id) {
				_ = csr.InArcs(a)
			}
			if csr.Active.Get(int(id)) {
				for _, fwd := range []bool{true, false} {
					for _, consec := range []bool{true, false} {
						stamps, v := csr.CausalArcs(id, fwd, consec)
						for _, s := range stamps {
							if s < 0 || int(s) >= st || int(v) >= n {
								t.Fatalf("causal arc (%d, %d) out of range", v, s)
							}
						}
					}
				}
			}
		}
		_ = g.ActiveTemporalNodes()
		_ = g.StaticEdgeCount()
	})
}
