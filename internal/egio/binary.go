package egio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/egraph"
)

// Binary format: a compact varint encoding for large evolving graphs.
//
//	magic "EVGR" | version u8 | flags u8 (bit0 directed, bit1 weighted)
//	numStamps uvarint
//	per stamp: label varint | edgeCount uvarint |
//	           edges as (u uvarint, v uvarint[, w float64 bits])
//
// Node ids are delta-free (graphs here are small-id dense); weights are
// IEEE 754 little-endian.
const (
	binaryMagic   = "EVGR"
	binaryVersion = 1
)

// WriteBinary encodes g in the binary format.
func WriteBinary(w io.Writer, g *egraph.IntEvolvingGraph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("egio: write magic: %w", err)
	}
	flags := byte(0)
	if g.Directed() {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	bw.WriteByte(binaryVersion)
	bw.WriteByte(flags)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		n := binary.PutUvarint(buf[:], x)
		bw.Write(buf[:n])
	}
	putVarint := func(x int64) {
		n := binary.PutVarint(buf[:], x)
		bw.Write(buf[:n])
	}
	putUvarint(uint64(g.NumStamps()))
	for t := 0; t < g.NumStamps(); t++ {
		putVarint(g.TimeLabel(t))
		putUvarint(uint64(g.SnapshotEdgeCount(t)))
		var werr error
		g.VisitEdges(int32(t), func(u, v int32, wt float64) bool {
			putUvarint(uint64(u))
			putUvarint(uint64(v))
			if g.Weighted() {
				var wb [8]byte
				binary.LittleEndian.PutUint64(wb[:], math.Float64bits(wt))
				if _, err := bw.Write(wb[:]); err != nil {
					werr = err
					return false
				}
			}
			return true
		})
		if werr != nil {
			return fmt.Errorf("egio: write edges: %w", werr)
		}
	}
	return bw.Flush()
}

// countingReader tracks the byte offset of the decode position so
// every ReadBinary error can say where in the stream it happened —
// WAL recovery and CLI tools surface these messages to operators, who
// need the offset to inspect the damaged file.
type countingReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.off += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

// ReadBinary decodes the binary format. Errors name the byte offset of
// the offending element and, for the magic/version prologue, both the
// expected and the actual bytes.
func ReadBinary(r io.Reader) (*egraph.IntEvolvingGraph, error) {
	cr := &countingReader{br: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("egio: read magic at offset 0: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("egio: bad magic at offset 0: got %q, want %q", magic, binaryMagic)
	}
	version, err := cr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("egio: read version at offset 4: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("egio: unsupported version at offset 4: got %d, want %d", version, binaryVersion)
	}
	flags, err := cr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("egio: read flags at offset 5: %w", err)
	}
	directed := flags&1 != 0
	weighted := flags&2 != 0

	var b *egraph.Builder
	if weighted {
		b = egraph.NewWeightedBuilder(directed)
	} else {
		b = egraph.NewBuilder(directed)
	}
	at := cr.off
	stamps, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("egio: read stamp count at offset %d: %w", at, err)
	}
	if stamps > 1<<32 {
		return nil, fmt.Errorf("egio: implausible stamp count %d at offset %d", stamps, at)
	}
	for s := uint64(0); s < stamps; s++ {
		at = cr.off
		label, err := binary.ReadVarint(cr)
		if err != nil {
			return nil, fmt.Errorf("egio: stamp %d label at offset %d: %w", s, at, err)
		}
		at = cr.off
		count, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("egio: stamp %d edge count at offset %d: %w", s, at, err)
		}
		for e := uint64(0); e < count; e++ {
			at = cr.off
			u, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("egio: stamp %d edge %d/%d at offset %d: %w", s, e, count, at, err)
			}
			v, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("egio: stamp %d edge %d/%d at offset %d: %w", s, e, count, at, err)
			}
			if u > math.MaxInt32 || v > math.MaxInt32 {
				return nil, fmt.Errorf("egio: stamp %d edge %d at offset %d: node id overflow (%d,%d), max %d", s, e, at, u, v, math.MaxInt32)
			}
			w := 1.0
			if weighted {
				var wb [8]byte
				if _, err := io.ReadFull(cr, wb[:]); err != nil {
					return nil, fmt.Errorf("egio: stamp %d edge %d/%d weight at offset %d: %w", s, e, count, at, err)
				}
				w = math.Float64frombits(binary.LittleEndian.Uint64(wb[:]))
			}
			b.AddWeightedEdge(int32(u), int32(v), label, w)
		}
	}
	return b.Build(), nil
}
