package egio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/egraph"
)

// Binary format: a compact varint encoding for large evolving graphs.
//
//	magic "EVGR" | version u8 | flags u8 (bit0 directed, bit1 weighted)
//	numStamps uvarint
//	per stamp: label varint | edgeCount uvarint |
//	           edges as (u uvarint, v uvarint[, w float64 bits])
//
// Node ids are delta-free (graphs here are small-id dense); weights are
// IEEE 754 little-endian.
const (
	binaryMagic   = "EVGR"
	binaryVersion = 1
)

// WriteBinary encodes g in the binary format.
func WriteBinary(w io.Writer, g *egraph.IntEvolvingGraph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("egio: write magic: %w", err)
	}
	flags := byte(0)
	if g.Directed() {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	bw.WriteByte(binaryVersion)
	bw.WriteByte(flags)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		n := binary.PutUvarint(buf[:], x)
		bw.Write(buf[:n])
	}
	putVarint := func(x int64) {
		n := binary.PutVarint(buf[:], x)
		bw.Write(buf[:n])
	}
	putUvarint(uint64(g.NumStamps()))
	for t := 0; t < g.NumStamps(); t++ {
		putVarint(g.TimeLabel(t))
		putUvarint(uint64(g.SnapshotEdgeCount(t)))
		var werr error
		g.VisitEdges(int32(t), func(u, v int32, wt float64) bool {
			putUvarint(uint64(u))
			putUvarint(uint64(v))
			if g.Weighted() {
				var wb [8]byte
				binary.LittleEndian.PutUint64(wb[:], math.Float64bits(wt))
				if _, err := bw.Write(wb[:]); err != nil {
					werr = err
					return false
				}
			}
			return true
		})
		if werr != nil {
			return fmt.Errorf("egio: write edges: %w", werr)
		}
	}
	return bw.Flush()
}

// ReadBinary decodes the binary format.
func ReadBinary(r io.Reader) (*egraph.IntEvolvingGraph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("egio: read magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("egio: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("egio: read version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("egio: unsupported version %d", version)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("egio: read flags: %w", err)
	}
	directed := flags&1 != 0
	weighted := flags&2 != 0

	var b *egraph.Builder
	if weighted {
		b = egraph.NewWeightedBuilder(directed)
	} else {
		b = egraph.NewBuilder(directed)
	}
	stamps, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("egio: read stamp count: %w", err)
	}
	if stamps > 1<<32 {
		return nil, fmt.Errorf("egio: implausible stamp count %d", stamps)
	}
	for s := uint64(0); s < stamps; s++ {
		label, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("egio: stamp %d label: %w", s, err)
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("egio: stamp %d edge count: %w", s, err)
		}
		for e := uint64(0); e < count; e++ {
			u, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("egio: stamp %d edge %d: %w", s, e, err)
			}
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("egio: stamp %d edge %d: %w", s, e, err)
			}
			if u > math.MaxInt32 || v > math.MaxInt32 {
				return nil, fmt.Errorf("egio: node id overflow (%d,%d)", u, v)
			}
			w := 1.0
			if weighted {
				var wb [8]byte
				if _, err := io.ReadFull(br, wb[:]); err != nil {
					return nil, fmt.Errorf("egio: stamp %d edge %d weight: %w", s, e, err)
				}
				w = math.Float64frombits(binary.LittleEndian.Uint64(wb[:]))
			}
			b.AddWeightedEdge(int32(u), int32(v), label, w)
		}
	}
	return b.Build(), nil
}
