package egio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, directed, weighted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var b *egraph.Builder
		if weighted {
			b = egraph.NewWeightedBuilder(directed)
		} else {
			b = egraph.NewBuilder(directed)
		}
		n := 2 + rng.Intn(10)
		for e := 0; e < rng.Intn(40); e++ {
			b.AddWeightedEdge(int32(rng.Intn(n)), int32(rng.Intn(n)),
				int64(rng.Intn(9)-4), rng.Float64()*10) // negative labels too
		}
		b.AddWeightedEdge(0, 1, 1, 0.5)
		g := b.Build()

		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.Directed() != g.Directed() || g2.Weighted() != g.Weighted() {
			return false
		}
		if !graphsEqual(g, g2) {
			return false
		}
		// Weights preserved bit-exactly.
		if g.Weighted() {
			for ts := 0; ts < g.NumStamps(); ts++ {
				ok := true
				g.VisitEdges(int32(ts), func(u, v int32, w float64) bool {
					adj := g2.OutNeighbors(u, int32(ts))
					ws := g2.OutWeights(u, int32(ts))
					for i, x := range adj {
						if x == v && ws[i] != w {
							ok = false
							return false
						}
					}
					return true
				})
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary round trip changed graph")
	}
}

func TestBinaryErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadBinary(strings.NewReader("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated header.
	if _, err := ReadBinary(strings.NewReader("EV")); err == nil {
		t.Fatal("truncated magic accepted")
	}
	// Bad version.
	if _, err := ReadBinary(bytes.NewReader([]byte("EVGR\x09\x00\x00"))); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated body: write a valid graph, chop bytes off the end.
	g := egraph.Figure1Graph()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-6; cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:len(full)-cut])); err == nil {
			t.Fatalf("truncation by %d bytes accepted", cut)
		}
	}
}

// TestBinaryErrorsAreDescriptive pins down the operator-facing error
// contract: every decode failure names the byte offset it happened at,
// and the magic/version errors state both expected and actual — WAL
// recovery surfaces these messages, so "bare failure" is not enough.
func TestBinaryErrorsAreDescriptive(t *testing.T) {
	wantAll := func(t *testing.T, err error, subs ...string) {
		t.Helper()
		if err == nil {
			t.Fatal("decode succeeded, want error")
		}
		for _, s := range subs {
			if !strings.Contains(err.Error(), s) {
				t.Fatalf("error %q missing %q", err, s)
			}
		}
	}
	_, err := ReadBinary(strings.NewReader("NOPE????"))
	wantAll(t, err, "offset 0", `"NOPE"`, `"EVGR"`)

	_, err = ReadBinary(bytes.NewReader([]byte("EVGR\x09\x00\x00")))
	wantAll(t, err, "offset 4", "got 9", "want 1")

	_, err = ReadBinary(strings.NewReader("EVGR\x01"))
	wantAll(t, err, "flags", "offset 5")

	// Truncate a real graph inside the first stamp's edges and check
	// the error localises the damage (stamp, edge, offset).
	var buf bytes.Buffer
	if err := WriteBinary(&buf, egraph.Figure1Graph()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Layout: 4 magic + 1 version + 1 flags + 1 stamp count, then per
	// stamp (label, count, edges); chop mid-way through stamp 0's edge
	// list.
	_, err = ReadBinary(bytes.NewReader(full[:9]))
	wantAll(t, err, "stamp 0", "offset 9")
}

func TestBinarySmallerThanText(t *testing.T) {
	// Sanity: the binary format should not be wildly larger than text.
	b := egraph.NewBuilder(true)
	rng := rand.New(rand.NewSource(3))
	for e := 0; e < 2000; e++ {
		b.AddEdge(int32(rng.Intn(500)), int32(rng.Intn(500)), int64(1+rng.Intn(8)))
	}
	g := b.Build()
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary %d bytes not smaller than text %d", bin.Len(), txt.Len())
	}
}
