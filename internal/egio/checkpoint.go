package egio

// Checkpoint layout (DESIGN.md §14). A checkpoint persists one *built*
// graph — the per-stamp snapshots plus the flat CSR view — as dense,
// page-aligned typed sections behind a CRC'd header, section table and
// footer, so a restarting server can mmap the file and serve straight
// out of the page cache: no parsing, no rebuild, O(1) work in the
// graph size.
//
//	header   (64 B)   magic "EGCP", version, flags, byte-order mark,
//	                  N, T, numActive, walSeq, fileSize, labelCount,
//	                  sectionCount, CRC32 over the header bytes
//	table    (24 B ×) per section: kind, CRC32, offset, length
//	tableCRC (4 B)
//	sections          each offset page-aligned (4096), zero padding
//	                  between; lengths are exact multiples of the
//	                  element size
//	footer   (16 B)   magic echo + header/table CRC echoes + CRC —
//	                  its presence at fileSize-16 proves the file is
//	                  complete even if a copy was truncated
//
// Sections are written in the machine's native byte order and aliased
// back as typed slices on read (the byte-order mark rejects
// foreign-endian files). Validation is two-layered: CRCs catch
// corruption, and a full structural pass (monotone bounded ptr rows,
// in-range adjacency, bitset/active-row agreement) catches crafted or
// stale-but-CRC-valid content, so a graph assembled from a checkpoint
// can never index out of bounds no matter what the file contains.
// Writers go through a temp file + rename so a partial checkpoint is
// never observed under the final name.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
	"unsafe"

	"repro/internal/ds"
	"repro/internal/egraph"
	"repro/internal/fault"
)

const (
	ckptMagic       = "EGCP"
	ckptVersion     = 1
	ckptBOM         = uint32(0x01020304)
	ckptPage        = 4096
	ckptHeaderLen   = 64
	ckptSecEntryLen = 24
	ckptFooterLen   = 16

	ckptFlagDirected = 1 << 0
	ckptFlagWeighted = 1 << 1
)

// Section kinds, in file order. Snapshot sections concatenate the
// per-stamp arrays (ptr rows are N+1 entries per stamp); flat sections
// are the CSR view's arrays verbatim.
const (
	secTimes      = 1  // T × i64 stamp labels, strictly increasing
	secLabels     = 2  // L × i64 registered ingest labels, strictly increasing
	secSnapOutPtr = 3  // T×(N+1) × i32
	secSnapOutAdj = 4  // ΣoutArcs × i32
	secSnapInPtr  = 5  // T×(N+1) × i32
	secSnapInAdj  = 6  // ΣinArcs × i32
	secSnapOutW   = 7  // ΣoutArcs × f64, weighted graphs only
	secSnapInW    = 8  // ΣinArcs × f64, weighted graphs only
	secSnapActive = 9  // T × ceil(N/64) × u64 bitset words
	secFlatOutPtr = 10 // N·T+1 × i64
	secFlatOutAdj = 11 // ΣoutArcs × i32
	secFlatInPtr  = 12 // N·T+1 × i64
	secFlatInAdj  = 13 // ΣinArcs × i32
	secActPtr     = 14 // N+1 × i32
	secActStamps  = 15 // numActive × i32
	secActPos     = 16 // N·T × i32
	secFlatActive = 17 // ceil(N·T/64) × u64 bitset words
)

var ckptSectionNames = map[uint32]string{
	secTimes: "times", secLabels: "labels",
	secSnapOutPtr: "snapOutPtr", secSnapOutAdj: "snapOutAdj",
	secSnapInPtr: "snapInPtr", secSnapInAdj: "snapInAdj",
	secSnapOutW: "snapOutW", secSnapInW: "snapInW",
	secSnapActive: "snapActive",
	secFlatOutPtr: "flatOutPtr", secFlatOutAdj: "flatOutAdj",
	secFlatInPtr: "flatInPtr", secFlatInAdj: "flatInAdj",
	secActPtr: "actPtr", secActStamps: "actStamps", secActPos: "actPos",
	secFlatActive: "flatActive",
}

func ckptSectionName(kind uint32) string {
	if s, ok := ckptSectionNames[kind]; ok {
		return s
	}
	return fmt.Sprintf("kind%d", kind)
}

// CheckpointMeta is what a checkpoint records beyond the graph itself.
type CheckpointMeta struct {
	// WALSeq is the WAL batch sequence this checkpoint covers: recovery
	// replays only batches ≥ WALSeq on top of the checkpointed graph.
	WALSeq uint64
	// Labels is the full registered time-label set (graph labels plus
	// empty-stamp extras), so a recovered server keeps accepting writes
	// at labels whose last arc was removed.
	Labels []int64

	// StallWrite and StallRename are fault-injection hooks for crash
	// tests: sleep mid-way through the section writes (partial temp
	// file on disk) and after fsync but before the rename. Zero in
	// production. They predate internal/fault and remain as the
	// flag-level spelling; Faults generalises them.
	StallWrite  time.Duration
	StallRename time.Duration

	// Faults, when non-nil, arms the checkpoint writer's injection
	// sites: ckpt.write (mid-way through the section writes),
	// ckpt.fsync (before the temp file's fsync) and ckpt.rename
	// (between fsync and the atomic rename). An injected error aborts
	// the write exactly like the real failure it models — the previous
	// checkpoint generation stays intact.
	Faults *fault.Injector
}

// CheckpointInfo describes a parsed checkpoint.
type CheckpointInfo struct {
	WALSeq    uint64
	Labels    []int64
	Directed  bool
	Weighted  bool
	Nodes     int
	Stamps    int
	NumActive int
	Bytes     int64
}

type ckptSection struct {
	kind   uint32
	chunks [][]byte
	length uint64
	offset uint64
	crc    uint32
}

// sliceBytes aliases a typed slice as raw bytes (native byte order).
func sliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(t)))
}

// bitsetWords returns exactly want words of the set's storage, copying
// only if an arena-recapped backing slice is longer than the bit
// capacity needs.
func bitsetWords(b *ds.BitSet, want int) []uint64 {
	w := b.Words()
	if len(w) == want {
		return w
	}
	out := make([]uint64, want)
	copy(out, w)
	return out
}

// WriteCheckpoint persists g (snapshots + flat CSR view) to path via a
// temp file and an atomic rename, fsyncing both the file and its
// directory. It returns the checkpoint's size in bytes. The graph's
// CSR view is built first if it is not cached yet.
func WriteCheckpoint(path string, g *egraph.IntEvolvingGraph, meta CheckpointMeta) (int64, error) {
	raw := g.Raw()
	csr := g.CSR()
	n, t := raw.NumNodes, len(raw.Snaps)
	wN := (n + 63) / 64
	nt := n * t
	wNT := (nt + 63) / 64

	labels := append([]int64(nil), meta.Labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	labels = dedupInt64(labels)

	flags := uint16(0)
	if raw.Directed {
		flags |= ckptFlagDirected
	}
	if raw.Weighted {
		flags |= ckptFlagWeighted
	}

	secs := make([]*ckptSection, 0, 17)
	add := func(kind uint32, chunks ...[]byte) {
		secs = append(secs, &ckptSection{kind: kind, chunks: chunks})
	}
	add(secTimes, sliceBytes(raw.Times))
	add(secLabels, sliceBytes(labels))
	outPtr := make([][]byte, t)
	outAdj := make([][]byte, t)
	inPtr := make([][]byte, t)
	inAdj := make([][]byte, t)
	outW := make([][]byte, t)
	inW := make([][]byte, t)
	act := make([][]byte, t)
	for i, s := range raw.Snaps {
		if len(s.OutPtr) != n+1 || len(s.InPtr) != n+1 {
			return 0, fmt.Errorf("egio: checkpoint: snapshot %d ptr rows have %d/%d entries, want %d", i, len(s.OutPtr), len(s.InPtr), n+1)
		}
		wantArcs := s.Edges
		if !raw.Directed {
			wantArcs *= 2
		}
		if len(s.OutAdj) != wantArcs {
			return 0, fmt.Errorf("egio: checkpoint: snapshot %d has %d out-arcs for %d edges (directed=%t)", i, len(s.OutAdj), s.Edges, raw.Directed)
		}
		outPtr[i] = sliceBytes(s.OutPtr)
		outAdj[i] = sliceBytes(s.OutAdj)
		inPtr[i] = sliceBytes(s.InPtr)
		inAdj[i] = sliceBytes(s.InAdj)
		outW[i] = sliceBytes(s.OutW)
		inW[i] = sliceBytes(s.InW)
		act[i] = sliceBytes(bitsetWords(s.Active, wN))
	}
	add(secSnapOutPtr, outPtr...)
	add(secSnapOutAdj, outAdj...)
	add(secSnapInPtr, inPtr...)
	add(secSnapInAdj, inAdj...)
	if raw.Weighted {
		add(secSnapOutW, outW...)
		add(secSnapInW, inW...)
	}
	add(secSnapActive, act...)
	add(secFlatOutPtr, sliceBytes(csr.OutPtr))
	add(secFlatOutAdj, sliceBytes(csr.OutAdj))
	add(secFlatInPtr, sliceBytes(csr.InPtr))
	add(secFlatInAdj, sliceBytes(csr.InAdj))
	add(secActPtr, sliceBytes(csr.ActPtr))
	add(secActStamps, sliceBytes(csr.ActStamps))
	add(secActPos, sliceBytes(csr.ActPos))
	add(secFlatActive, sliceBytes(bitsetWords(csr.Active, wNT)))

	// Lengths, CRCs and page-aligned offsets.
	cur := uint64(ckptHeaderLen + len(secs)*ckptSecEntryLen + 4)
	cur = (cur + ckptPage - 1) &^ uint64(ckptPage-1)
	for _, s := range secs {
		crc := uint32(0)
		for _, c := range s.chunks {
			s.length += uint64(len(c))
			crc = crc32.Update(crc, crc32.IEEETable, c)
		}
		s.crc = crc
		s.offset = cur
		cur = (cur + s.length + ckptPage - 1) &^ uint64(ckptPage-1)
	}
	last := secs[len(secs)-1]
	fileSize := last.offset + last.length + ckptFooterLen

	// Header and table.
	ne := binary.NativeEndian
	header := make([]byte, ckptHeaderLen)
	copy(header[0:4], ckptMagic)
	ne.PutUint16(header[4:6], ckptVersion)
	ne.PutUint16(header[6:8], flags)
	ne.PutUint32(header[8:12], ckptBOM)
	ne.PutUint32(header[12:16], uint32(len(secs)))
	ne.PutUint64(header[16:24], uint64(n))
	ne.PutUint64(header[24:32], uint64(t))
	ne.PutUint64(header[32:40], uint64(raw.NumActive))
	ne.PutUint64(header[40:48], meta.WALSeq)
	ne.PutUint64(header[48:56], fileSize)
	ne.PutUint32(header[56:60], uint32(len(labels)))
	ne.PutUint32(header[60:64], crc32.ChecksumIEEE(header[:60]))
	table := make([]byte, len(secs)*ckptSecEntryLen+4)
	for i, s := range secs {
		e := table[i*ckptSecEntryLen:]
		ne.PutUint32(e[0:4], s.kind)
		ne.PutUint32(e[4:8], s.crc)
		ne.PutUint64(e[8:16], s.offset)
		ne.PutUint64(e[16:24], s.length)
	}
	ne.PutUint32(table[len(secs)*ckptSecEntryLen:], crc32.ChecksumIEEE(table[:len(secs)*ckptSecEntryLen]))
	footer := make([]byte, ckptFooterLen)
	copy(footer[0:4], ckptMagic)
	ne.PutUint32(footer[4:8], ne.Uint32(header[60:64]))
	ne.PutUint32(footer[8:12], ne.Uint32(table[len(secs)*ckptSecEntryLen:]))
	ne.PutUint32(footer[12:16], crc32.ChecksumIEEE(footer[:12]))

	// Temp-then-rename: a crash at any point leaves either the old
	// checkpoint or a *.tmp nobody reads — never a short file under
	// the final name.
	tmp := path + ".ckpt-tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp) // no-op after a successful rename
	w := bufio.NewWriterSize(f, 1<<20)
	written := uint64(0)
	emit := func(b []byte) error {
		nw, werr := w.Write(b)
		written += uint64(nw)
		return werr
	}
	pad := func(to uint64) error {
		var zeros [ckptPage]byte
		for written < to {
			chunk := to - written
			if chunk > ckptPage {
				chunk = ckptPage
			}
			if err := emit(zeros[:chunk]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(header); err != nil {
		f.Close()
		return 0, err
	}
	if err := emit(table); err != nil {
		f.Close()
		return 0, err
	}
	for i, s := range secs {
		if err := pad(s.offset); err != nil {
			f.Close()
			return 0, err
		}
		for _, c := range s.chunks {
			if err := emit(c); err != nil {
				f.Close()
				return 0, err
			}
		}
		if i == len(secs)/2 && (meta.StallWrite > 0 || meta.Faults != nil) {
			// Crash/fault window: make sure the partial prefix is on
			// disk, then hold it open so a SIGKILL lands mid-write, or
			// abort here when a ckpt.write rule injects an error.
			w.Flush()
			if meta.StallWrite > 0 {
				time.Sleep(meta.StallWrite)
			}
			if err := meta.Faults.Fire(fault.CkptWrite); err != nil {
				f.Close()
				return 0, err
			}
		}
	}
	if err := emit(footer); err != nil {
		f.Close()
		return 0, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if written != fileSize {
		f.Close()
		return 0, fmt.Errorf("egio: checkpoint: wrote %d bytes, expected %d", written, fileSize)
	}
	if err := meta.Faults.Fire(fault.CkptFsync); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if meta.StallRename > 0 {
		time.Sleep(meta.StallRename)
	}
	if err := meta.Faults.Fire(fault.CkptRename); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		d.Sync() // best-effort: make the rename itself durable
		d.Close()
	}
	return int64(fileSize), nil
}

func dedupInt64(s []int64) []int64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// view aliases count elements of type T at data[off:]. Bounds are the
// caller's responsibility (the section table is validated first); the
// base pointer must be 8-byte aligned.
func view[T any](data []byte, off, length uint64) []T {
	if length == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), int(length)/int(unsafe.Sizeof(t)))
}

// ParseCheckpoint validates data as a checkpoint and assembles the
// graph around it with zero copying: every slice of the result aliases
// data, so data must stay valid (and unmodified) for the graph's
// lifetime. The flat CSR view is installed pre-built — Graph.CSR on
// the result returns the mmap'd sections directly.
//
// Errors carry the byte offset and the expected/actual values in the
// style of ReadBinary, and the validation pass is total: any input for
// which ParseCheckpoint returns nil error yields a graph whose query
// surface cannot index out of bounds.
func ParseCheckpoint(data []byte) (*egraph.IntEvolvingGraph, *CheckpointInfo, error) {
	if len(data) < ckptHeaderLen {
		return nil, nil, fmt.Errorf("egio: checkpoint truncated: %d bytes, want at least %d for the header", len(data), ckptHeaderLen)
	}
	ne := binary.NativeEndian
	if string(data[0:4]) != ckptMagic {
		return nil, nil, fmt.Errorf("egio: checkpoint bad magic at offset 0: got %q, want %q", data[0:4], ckptMagic)
	}
	if v := ne.Uint16(data[4:6]); v != ckptVersion {
		return nil, nil, fmt.Errorf("egio: checkpoint unsupported version at offset 4: got %d, want %d", v, ckptVersion)
	}
	flags := ne.Uint16(data[6:8])
	if flags&^(ckptFlagDirected|ckptFlagWeighted) != 0 {
		return nil, nil, fmt.Errorf("egio: checkpoint unknown flags at offset 6: %#04x", flags)
	}
	if bom := ne.Uint32(data[8:12]); bom != ckptBOM {
		return nil, nil, fmt.Errorf("egio: checkpoint byte-order mark at offset 8: got %#08x, want %#08x (written on a different-endian machine?)", bom, ckptBOM)
	}
	if got, want := ne.Uint32(data[60:64]), crc32.ChecksumIEEE(data[:60]); got != want {
		return nil, nil, fmt.Errorf("egio: checkpoint header CRC mismatch at offset 60: got %#08x, want %#08x", got, want)
	}
	secCount := int(ne.Uint32(data[12:16]))
	n64 := ne.Uint64(data[16:24])
	t64 := ne.Uint64(data[24:32])
	a64 := ne.Uint64(data[32:40])
	walSeq := ne.Uint64(data[40:48])
	fileSize := ne.Uint64(data[48:56])
	labelCount := uint64(ne.Uint32(data[56:60]))
	if fileSize != uint64(len(data)) {
		return nil, nil, fmt.Errorf("egio: checkpoint length mismatch: header says %d bytes, have %d", fileSize, len(data))
	}
	directed := flags&ckptFlagDirected != 0
	weighted := flags&ckptFlagWeighted != 0
	wantSecs := 15
	if weighted {
		wantSecs = 17
	}
	if secCount != wantSecs {
		return nil, nil, fmt.Errorf("egio: checkpoint section count at offset 12: got %d, want %d", secCount, wantSecs)
	}
	const maxDim = 1 << 31
	if n64 > maxDim || t64 > maxDim || n64*t64 > 1<<47 {
		return nil, nil, fmt.Errorf("egio: checkpoint implausible dimensions: N=%d T=%d", n64, t64)
	}
	n, t := int(n64), int(t64)
	nt := n * t
	if a64 > uint64(nt) {
		return nil, nil, fmt.Errorf("egio: checkpoint numActive %d exceeds N·T = %d", a64, nt)
	}
	numActive := int(a64)

	tableOff := uint64(ckptHeaderLen)
	tableLen := uint64(secCount * ckptSecEntryLen)
	bodyStart := tableOff + tableLen + 4
	if uint64(len(data)) < bodyStart+ckptFooterLen {
		return nil, nil, fmt.Errorf("egio: checkpoint truncated: %d bytes, want at least %d for the section table", len(data), bodyStart+ckptFooterLen)
	}
	if got, want := ne.Uint32(data[tableOff+tableLen:]), crc32.ChecksumIEEE(data[tableOff:tableOff+tableLen]); got != want {
		return nil, nil, fmt.Errorf("egio: checkpoint section table CRC mismatch at offset %d: got %#08x, want %#08x", tableOff+tableLen, got, want)
	}
	fo := uint64(len(data)) - ckptFooterLen
	if string(data[fo:fo+4]) != ckptMagic {
		return nil, nil, fmt.Errorf("egio: checkpoint bad footer magic at offset %d: got %q, want %q", fo, data[fo:fo+4], ckptMagic)
	}
	if got, want := ne.Uint32(data[fo+12:]), crc32.ChecksumIEEE(data[fo:fo+12]); got != want {
		return nil, nil, fmt.Errorf("egio: checkpoint footer CRC mismatch at offset %d: got %#08x, want %#08x", fo+12, got, want)
	}
	if got, want := ne.Uint32(data[fo+4:fo+8]), ne.Uint32(data[60:64]); got != want {
		return nil, nil, fmt.Errorf("egio: checkpoint footer header-CRC echo at offset %d: got %#08x, want %#08x", fo+4, got, want)
	}
	if got, want := ne.Uint32(data[fo+8:fo+12]), ne.Uint32(data[tableOff+tableLen:]); got != want {
		return nil, nil, fmt.Errorf("egio: checkpoint footer table-CRC echo at offset %d: got %#08x, want %#08x", fo+8, got, want)
	}

	// Section table: known kinds, no duplicates, page-aligned offsets,
	// in-bounds extents, exact expected lengths (all derivable from the
	// header once the adjacency totals are read off the ptr sections).
	type entry struct {
		off, length uint64
		crc         uint32
	}
	entries := make(map[uint32]entry, secCount)
	for i := 0; i < secCount; i++ {
		e := data[tableOff+uint64(i*ckptSecEntryLen):]
		kind := ne.Uint32(e[0:4])
		ent := entry{crc: ne.Uint32(e[4:8]), off: ne.Uint64(e[8:16]), length: ne.Uint64(e[16:24])}
		entOff := tableOff + uint64(i*ckptSecEntryLen)
		if _, ok := ckptSectionNames[kind]; !ok {
			return nil, nil, fmt.Errorf("egio: checkpoint unknown section kind %d in table entry at offset %d", kind, entOff)
		}
		if !weighted && (kind == secSnapOutW || kind == secSnapInW) {
			return nil, nil, fmt.Errorf("egio: checkpoint weight section %s in an unweighted file (table entry at offset %d)", ckptSectionName(kind), entOff)
		}
		if _, dup := entries[kind]; dup {
			return nil, nil, fmt.Errorf("egio: checkpoint duplicate section %s in table entry at offset %d", ckptSectionName(kind), entOff)
		}
		if ent.off%ckptPage != 0 {
			return nil, nil, fmt.Errorf("egio: checkpoint section %s offset %d is not %d-byte aligned", ckptSectionName(kind), ent.off, ckptPage)
		}
		if ent.off < bodyStart || ent.off+ent.length < ent.off || ent.off+ent.length > fo {
			return nil, nil, fmt.Errorf("egio: checkpoint section %s extent [%d, %d) out of bounds [%d, %d)", ckptSectionName(kind), ent.off, ent.off+ent.length, bodyStart, fo)
		}
		entries[kind] = ent
	}

	wN := uint64((n + 63) / 64)
	wNT := uint64((nt + 63) / 64)
	wantLen := map[uint32]uint64{
		secTimes:      8 * t64,
		secLabels:     8 * labelCount,
		secSnapOutPtr: 4 * t64 * (n64 + 1),
		secSnapInPtr:  4 * t64 * (n64 + 1),
		secSnapActive: 8 * t64 * wN,
		secFlatOutPtr: 8 * (uint64(nt) + 1),
		secFlatInPtr:  8 * (uint64(nt) + 1),
		secActPtr:     4 * (n64 + 1),
		secActStamps:  4 * a64,
		secActPos:     4 * uint64(nt),
		secFlatActive: 8 * wNT,
	}
	for kind, want := range wantLen {
		ent, ok := entries[kind]
		if !ok {
			return nil, nil, fmt.Errorf("egio: checkpoint missing section %s", ckptSectionName(kind))
		}
		if ent.length != want {
			return nil, nil, fmt.Errorf("egio: checkpoint section %s length: got %d bytes, want %d", ckptSectionName(kind), ent.length, want)
		}
	}
	for _, kind := range []uint32{secSnapOutAdj, secSnapInAdj, secFlatOutAdj, secFlatInAdj} {
		if _, ok := entries[kind]; !ok {
			return nil, nil, fmt.Errorf("egio: checkpoint missing section %s", ckptSectionName(kind))
		}
	}
	// Section CRCs are independent scans over disjoint byte ranges, and
	// on a large checkpoint they dominate open time — check them in
	// parallel so a warm restart stays close to the mmap cost.
	var crcWG sync.WaitGroup
	crcErrs := make([]error, 0, len(entries))
	var crcMu sync.Mutex
	for kind, ent := range entries {
		crcWG.Add(1)
		go func(kind uint32, ent entry) {
			defer crcWG.Done()
			if got, want := crc32.ChecksumIEEE(data[ent.off:ent.off+ent.length]), ent.crc; got != want {
				crcMu.Lock()
				crcErrs = append(crcErrs, fmt.Errorf("egio: checkpoint section %s CRC mismatch at offset %d: got %#08x, want %#08x", ckptSectionName(kind), ent.off, want, got))
				crcMu.Unlock()
			}
		}(kind, ent)
	}
	crcWG.Wait()
	if len(crcErrs) > 0 {
		// Deterministic pick when several sections fail at once, so the
		// corruption tests see a stable message.
		first := crcErrs[0]
		for _, e := range crcErrs[1:] {
			if e.Error() < first.Error() {
				first = e
			}
		}
		return nil, nil, first
	}

	// All bytes verified; alias typed slices. unsafe.Slice needs the
	// element-aligned base that mmap guarantees — heap buffers (tests,
	// fuzz inputs) may not, so copy into u64-backed storage if needed.
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		aligned := make([]uint64, (len(data)+7)/8)
		copy(sliceBytes(aligned), data)
		data = sliceBytes(aligned)[:len(data)]
	}
	sec32 := func(kind uint32) []int32 {
		ent := entries[kind]
		return view[int32](data, ent.off, ent.length)
	}
	sec64 := func(kind uint32) []int64 {
		ent := entries[kind]
		return view[int64](data, ent.off, ent.length)
	}
	secU64 := func(kind uint32) []uint64 {
		ent := entries[kind]
		return view[uint64](data, ent.off, ent.length)
	}
	secF64 := func(kind uint32) []float64 {
		ent := entries[kind]
		return view[float64](data, ent.off, ent.length)
	}

	times := sec64(secTimes)
	labels := sec64(secLabels)
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, nil, fmt.Errorf("egio: checkpoint times section: labels not strictly increasing at index %d", i)
		}
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] <= labels[i-1] {
			return nil, nil, fmt.Errorf("egio: checkpoint labels section: labels not strictly increasing at index %d", i)
		}
	}

	// Ptr rows: each stamp's row starts at 0 and is monotone; the row
	// totals bound the adjacency sections exactly.
	checkPtrRows := func(kind uint32, ptr []int32) ([]int64, uint64, error) {
		rowLen := make([]int64, t)
		total := uint64(0)
		for si := 0; si < t; si++ {
			row := ptr[si*(n+1) : (si+1)*(n+1)]
			if row[0] != 0 {
				return nil, 0, fmt.Errorf("egio: checkpoint section %s: stamp %d row starts at %d, want 0", ckptSectionName(kind), si, row[0])
			}
			for i := 1; i <= n; i++ {
				if row[i] < row[i-1] {
					return nil, 0, fmt.Errorf("egio: checkpoint section %s: stamp %d row not monotone at node %d", ckptSectionName(kind), si, i)
				}
			}
			rowLen[si] = int64(row[n])
			total += uint64(row[n])
		}
		return rowLen, total, nil
	}
	snapOutPtr := sec32(secSnapOutPtr)
	snapInPtr := sec32(secSnapInPtr)
	outLens, outTotal, err := checkPtrRows(secSnapOutPtr, snapOutPtr)
	if err != nil {
		return nil, nil, err
	}
	inLens, inTotal, err := checkPtrRows(secSnapInPtr, snapInPtr)
	if err != nil {
		return nil, nil, err
	}
	adjLen := map[uint32]uint64{
		secSnapOutAdj: 4 * outTotal, secFlatOutAdj: 4 * outTotal,
		secSnapInAdj: 4 * inTotal, secFlatInAdj: 4 * inTotal,
	}
	if weighted {
		adjLen[secSnapOutW] = 8 * outTotal
		adjLen[secSnapInW] = 8 * inTotal
	}
	for kind, want := range adjLen {
		if got := entries[kind].length; got != want {
			return nil, nil, fmt.Errorf("egio: checkpoint section %s length: got %d bytes, want %d", ckptSectionName(kind), got, want)
		}
	}
	if !directed {
		for si, l := range outLens {
			if l%2 != 0 {
				return nil, nil, fmt.Errorf("egio: checkpoint snapOutPtr section: odd arc count %d in undirected stamp %d", l, si)
			}
		}
	}
	snapOutAdj := sec32(secSnapOutAdj)
	snapInAdj := sec32(secSnapInAdj)
	for i, v := range snapOutAdj {
		if v < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("egio: checkpoint snapOutAdj section: node id %d out of range [0, %d) at index %d", v, n, i)
		}
	}
	for i, v := range snapInAdj {
		if v < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("egio: checkpoint snapInAdj section: node id %d out of range [0, %d) at index %d", v, n, i)
		}
	}

	// Flat CSR rows: monotone over the whole id space, totals matching
	// the snapshot arc counts, adjacency in temporal-id range.
	checkFlatPtr := func(kind uint32, ptr []int64, total uint64) error {
		if ptr[0] != 0 {
			return fmt.Errorf("egio: checkpoint section %s: row starts at %d, want 0", ckptSectionName(kind), ptr[0])
		}
		for i := 1; i < len(ptr); i++ {
			if ptr[i] < ptr[i-1] {
				return fmt.Errorf("egio: checkpoint section %s: row not monotone at index %d", ckptSectionName(kind), i)
			}
		}
		if uint64(ptr[len(ptr)-1]) != total {
			return fmt.Errorf("egio: checkpoint section %s: row total %d, want %d arcs", ckptSectionName(kind), ptr[len(ptr)-1], total)
		}
		return nil
	}
	flatOutPtr := sec64(secFlatOutPtr)
	flatInPtr := sec64(secFlatInPtr)
	if err := checkFlatPtr(secFlatOutPtr, flatOutPtr, outTotal); err != nil {
		return nil, nil, err
	}
	if err := checkFlatPtr(secFlatInPtr, flatInPtr, inTotal); err != nil {
		return nil, nil, err
	}
	flatOutAdj := sec32(secFlatOutAdj)
	flatInAdj := sec32(secFlatInAdj)
	for i, v := range flatOutAdj {
		if v < 0 || int(v) >= nt {
			return nil, nil, fmt.Errorf("egio: checkpoint flatOutAdj section: temporal id %d out of range [0, %d) at index %d", v, nt, i)
		}
	}
	for i, v := range flatInAdj {
		if v < 0 || int(v) >= nt {
			return nil, nil, fmt.Errorf("egio: checkpoint flatInAdj section: temporal id %d out of range [0, %d) at index %d", v, nt, i)
		}
	}

	// Activity: the per-node stamp rows, the per-stamp bitsets, the
	// flat bitset and ActPos must all describe the same set of exactly
	// numActive temporal nodes. This is the pass that makes
	// CSR.CausalArcs safe: every id the bitsets call active is proven
	// to carry a valid position inside its node's stamp row.
	actPtr := sec32(secActPtr)
	actStamps := sec32(secActStamps)
	actPos := sec32(secActPos)
	snapActWords := secU64(secSnapActive)
	flatActWords := secU64(secFlatActive)
	if actPtr[0] != 0 {
		return nil, nil, fmt.Errorf("egio: checkpoint actPtr section: row starts at %d, want 0", actPtr[0])
	}
	for i := 1; i <= n; i++ {
		if actPtr[i] < actPtr[i-1] {
			return nil, nil, fmt.Errorf("egio: checkpoint actPtr section: row not monotone at node %d", i)
		}
	}
	if int(actPtr[n]) != numActive {
		return nil, nil, fmt.Errorf("egio: checkpoint actPtr section: row total %d, want numActive %d", actPtr[n], numActive)
	}
	tailMask := func(words []uint64, nbits int) bool {
		if r := nbits % 64; r != 0 && len(words) > 0 {
			return words[len(words)-1]&^(1<<uint(r)-1) == 0
		}
		return true
	}
	snapBits := uint64(0)
	for si := 0; si < t; si++ {
		row := snapActWords[si*int(wN) : (si+1)*int(wN)]
		if !tailMask(row, n) {
			return nil, nil, fmt.Errorf("egio: checkpoint snapActive section: stamp %d has bits set past node %d", si, n-1)
		}
		for _, w := range row {
			snapBits += uint64(bits.OnesCount64(w))
		}
	}
	if snapBits != a64 {
		return nil, nil, fmt.Errorf("egio: checkpoint snapActive section: %d bits set, want numActive %d", snapBits, numActive)
	}
	if !tailMask(flatActWords, nt) {
		return nil, nil, fmt.Errorf("egio: checkpoint flatActive section: bits set past id %d", nt-1)
	}
	flatBits := uint64(0)
	for _, w := range flatActWords {
		flatBits += uint64(bits.OnesCount64(w))
	}
	if flatBits != a64 {
		return nil, nil, fmt.Errorf("egio: checkpoint flatActive section: %d bits set, want numActive %d", flatBits, numActive)
	}
	bitAt := func(words []uint64, i int) bool {
		return words[i/64]&(1<<uint(i%64)) != 0
	}
	for v := 0; v < n; v++ {
		lo, hi := int(actPtr[v]), int(actPtr[v+1])
		for gi := lo; gi < hi; gi++ {
			s := actStamps[gi]
			if s < 0 || int(s) >= t {
				return nil, nil, fmt.Errorf("egio: checkpoint actStamps section: stamp %d out of range [0, %d) at index %d", s, t, gi)
			}
			if gi > lo && s <= actStamps[gi-1] {
				return nil, nil, fmt.Errorf("egio: checkpoint actStamps section: node %d row not strictly increasing at index %d", v, gi)
			}
			id := int(s)*n + v
			if int(actPos[id]) != gi {
				return nil, nil, fmt.Errorf("egio: checkpoint actPos section: id %d maps to %d, want row index %d", id, actPos[id], gi)
			}
			if !bitAt(snapActWords[int(s)*int(wN):], v) {
				return nil, nil, fmt.Errorf("egio: checkpoint snapActive section: stamp %d missing node %d listed in actStamps", s, v)
			}
			if !bitAt(flatActWords, id) {
				return nil, nil, fmt.Errorf("egio: checkpoint flatActive section: missing id %d listed in actStamps", id)
			}
		}
	}
	listed := 0
	for i, p := range actPos {
		if p < -1 || int(p) >= numActive {
			return nil, nil, fmt.Errorf("egio: checkpoint actPos section: position %d out of range [-1, %d) at index %d", p, numActive, i)
		}
		if p >= 0 {
			listed++
		}
	}
	if listed != numActive {
		return nil, nil, fmt.Errorf("egio: checkpoint actPos section: %d ids carry positions, want numActive %d", listed, numActive)
	}

	// Assemble. Everything below aliases data.
	raw := egraph.Raw{
		Directed:  directed,
		Weighted:  weighted,
		NumNodes:  n,
		NumActive: numActive,
		Times:     times,
		Snaps:     make([]egraph.RawSnapshot, t),
	}
	var outW, inW []float64
	if weighted {
		outW = secF64(secSnapOutW)
		inW = secF64(secSnapInW)
	}
	outOff, inOff := int64(0), int64(0)
	for si := 0; si < t; si++ {
		ol, il := outLens[si], inLens[si]
		rs := egraph.RawSnapshot{
			OutPtr: snapOutPtr[si*(n+1) : (si+1)*(n+1) : (si+1)*(n+1)],
			OutAdj: snapOutAdj[outOff : outOff+ol : outOff+ol],
			InPtr:  snapInPtr[si*(n+1) : (si+1)*(n+1) : (si+1)*(n+1)],
			InAdj:  snapInAdj[inOff : inOff+il : inOff+il],
			Active: ds.BitSetFromWords(snapActWords[si*int(wN):(si+1)*int(wN):(si+1)*int(wN)], n),
		}
		if weighted {
			rs.OutW = outW[outOff : outOff+ol : outOff+ol]
			rs.InW = inW[inOff : inOff+il : inOff+il]
		}
		if directed {
			rs.Edges = int(ol)
		} else {
			rs.Edges = int(ol / 2)
		}
		raw.Snaps[si] = rs
		outOff += ol
		inOff += il
	}
	csr := &egraph.CSR{
		N: n, T: t,
		OutPtr: flatOutPtr, OutAdj: flatOutAdj,
		InPtr: flatInPtr, InAdj: flatInAdj,
		ActPtr: actPtr, ActStamps: actStamps, ActPos: actPos,
		Active: ds.BitSetFromWords(flatActWords, nt),
	}
	g := egraph.FromRaw(raw, actPtr, actStamps, csr)
	info := &CheckpointInfo{
		WALSeq:    walSeq,
		Labels:    append([]int64(nil), labels...),
		Directed:  directed,
		Weighted:  weighted,
		Nodes:     n,
		Stamps:    t,
		NumActive: numActive,
		Bytes:     int64(len(data)),
	}
	return g, info, nil
}

// Checkpoint is an open checkpoint file: the assembled graph plus the
// backing bytes (an mmap'd view where the platform supports it, a heap
// copy otherwise).
type Checkpoint struct {
	Graph *egraph.IntEvolvingGraph
	Info  CheckpointInfo

	data   []byte
	mapped bool
}

// OpenCheckpoint maps path read-only, validates it and assembles the
// graph over the mapped sections. The returned handle must stay open
// for as long as the graph — or any graph patched from it, or any CSR
// view built from either — is reachable; a long-lived server simply
// never closes it and lets process exit unmap the pages.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		f.Close()
		return nil, fmt.Errorf("egio: checkpoint %s is empty", path)
	}
	data, mapped, err := mmapFile(f, st.Size())
	if err != nil {
		// No mmap on this platform (or the map failed): fall back to a
		// plain read. Same validation, same zero-copy assembly, just
		// heap-backed.
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			f.Close()
			return nil, serr
		}
		data, err = io.ReadAll(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		mapped = false
	}
	f.Close()
	g, info, perr := ParseCheckpoint(data)
	if perr != nil {
		if mapped {
			munmapBytes(data)
		}
		return nil, perr
	}
	return &Checkpoint{Graph: g, Info: *info, data: data, mapped: mapped}, nil
}

// Close unmaps the checkpoint. The graph (and anything sharing its
// storage) must not be used afterwards.
func (c *Checkpoint) Close() error {
	if c.mapped {
		c.mapped = false
		return munmapBytes(c.data)
	}
	c.data = nil
	return nil
}
