// Package evolving is the public API of this reproduction of
// Chen & Zhang, "The Right Way to Search Evolving Graphs" (IPDPS
// Workshops 2016, arXiv:1601.08189).
//
// An evolving graph is a time-ordered sequence of static graph snapshots.
// The paper's contribution — implemented in full here — is a breadth-first
// search that traverses temporal paths: sequences of active temporal
// nodes advancing either along a static edge within one time stamp or
// along a causal edge that keeps the node and moves forward in time.
// Distances count both kinds of hop (the paper's Def. 6).
//
// # Quick start
//
//	b := evolving.NewBuilder(true) // directed
//	b.AddEdge(0, 1, 1)             // 0→1 at time 1
//	b.AddEdge(0, 2, 2)
//	b.AddEdge(1, 2, 3)
//	g := b.Build()
//
//	root := evolving.TemporalNode{Node: 0, Stamp: 0}
//	res, err := evolving.BFS(g, root, evolving.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Dist(evolving.TemporalNode{Node: 2, Stamp: 2})) // 3
//
// The package re-exports the full library surface: graph construction
// (Builder, generic labelled graphs), Algorithm 1 in sequential and
// parallel form, the algebraic Algorithm 2 (ABFS) with the block
// adjacency matrix and the deliberately incorrect Eq. 2 baselines,
// temporal path enumeration and counting, workload generators, the
// Sec. V citation-mining layer, related-work distance baselines, the
// incremental edge-stream substrate, and serialization. See the
// subdirectories of internal/ for implementation detail and DESIGN.md
// for the paper-to-module map.
//
// Searches run by default on a flat CSR/bitset engine over the unfolded
// temporal graph (DESIGN.md §8); Options.UseAdjacencyMaps selects the
// original adjacency-map traversal, kept as a differential-testing
// oracle. The analytics layer — components, influence maximisation,
// closeness/efficiency, temporal Katz — traverses the same cached view
// (DESIGN.md §9), with the equivalent escape hatches on
// ComponentOptions, InfluenceOptions, MetricOptions and KatzOptions,
// and per-root sweeps fanned across worker pools. The CSR view itself
// is available through Graph.CSR for code that wants to traverse the
// unfolded graph directly.
package evolving

import (
	"io"

	"repro/internal/algebra"
	"repro/internal/citation"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/egio"
	"repro/internal/egraph"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/rank"
	"repro/internal/reachindex"
	"repro/internal/stream"
)

// Graph is an immutable evolving graph over dense int node ids; build one
// with a Builder or a generator.
type Graph = egraph.IntEvolvingGraph

// Builder accumulates time-stamped edges and produces a Graph.
type Builder = egraph.Builder

// TemporalNode is a (node, stamp-index) pair — the paper's (v, t).
type TemporalNode = egraph.TemporalNode

// TemporalPath is a sequence of temporal nodes advancing in space or time.
type TemporalPath = core.TemporalPath

// CausalMode selects the causal-edge set connecting a node's active stamps.
type CausalMode = egraph.CausalMode

// Causal edge modes. CausalAllPairs is the paper's definition.
const (
	CausalAllPairs    = egraph.CausalAllPairs
	CausalConsecutive = egraph.CausalConsecutive
)

// Options configures a BFS run; the zero value is the paper's Algorithm 1.
type Options = core.Options

// ParallelOptions configures the level-synchronous parallel BFS.
type ParallelOptions = core.ParallelOptions

// Direction orients a search in time.
type Direction = core.Direction

// Search directions.
const (
	Forward  = core.Forward
	Backward = core.Backward
)

// Result is a BFS outcome: Algorithm 1's reached dictionary plus parents.
type Result = core.Result

// WeightedOptions and WeightedResult belong to the Dijkstra variant.
type (
	WeightedOptions = core.WeightedOptions
	WeightedResult  = core.WeightedResult
)

// Unfolding is the Theorem 1 static graph G = (V, E) with its node map.
type Unfolding = egraph.Unfolding

// CSRView is the flat compressed-sparse-row layout of the unfolded
// temporal graph that the default BFS engine traverses (DESIGN.md §8);
// obtain one with Graph.CSR (cached) or BuildFlatCSR (uncached, with
// explicit worker/arena control).
type CSRView = egraph.CSR

// CSRBuildOptions tunes BuildFlatCSR / Graph.EnsureCSR: parallel fill
// fan-out and the recycled-buffer arena (DESIGN.md §12).
type CSRBuildOptions = egraph.CSRBuildOptions

// CSRArena recycles a retired flat view's buffers into the next build.
type CSRArena = egraph.CSRArena

// BuildFlatCSR builds a flat CSR view without touching the graph's
// cache — sequential and parallel builds are bit-identical.
func BuildFlatCSR(g *Graph, opts CSRBuildOptions) *CSRView { return egraph.BuildFlatCSR(g, opts) }

// ArcDelta is one arc-level mutation consumed by PatchGraph.
type ArcDelta = egraph.ArcDelta

// PatchGraph applies an arc delta to base by copy-on-write and returns
// the resulting immutable graph: only stamps the delta touches are
// rebuilt, untouched snapshots and active-stamp rows are shared with
// base by reference (DESIGN.md §12). An empty or no-op delta returns
// base itself.
func PatchGraph(base *Graph, delta []ArcDelta) *Graph { return egraph.Patch(base, delta) }

// ErrInactiveRoot is returned when a search root is inactive.
var ErrInactiveRoot = core.ErrInactiveRoot

// NewBuilder returns a Builder for an unweighted evolving graph.
func NewBuilder(directed bool) *Builder { return egraph.NewBuilder(directed) }

// NewWeightedBuilder returns a Builder whose edges carry weights.
func NewWeightedBuilder(directed bool) *Builder { return egraph.NewWeightedBuilder(directed) }

// NewLabeledGraph returns an evolving graph over arbitrary comparable
// node labels (e.g. author names).
func NewLabeledGraph[N comparable](directed bool) *egraph.EvolvingGraph[N] {
	return egraph.NewEvolvingGraph[N](directed)
}

// BFS runs the paper's Algorithm 1 from root.
func BFS(g *Graph, root TemporalNode, opts Options) (*Result, error) {
	return core.BFS(g, root, opts)
}

// ParallelBFS is the level-synchronous parallel Algorithm 1.
func ParallelBFS(g *Graph, root TemporalNode, opts ParallelOptions) (*Result, error) {
	return core.ParallelBFS(g, root, opts)
}

// MultiSourceBFS searches from several roots at once.
func MultiSourceBFS(g *Graph, roots []TemporalNode, opts Options) (*Result, error) {
	return core.MultiSourceBFS(g, roots, opts)
}

// Reachable reports whether a temporal path joins from to to (Def. 7).
func Reachable(g *Graph, from, to TemporalNode, mode CausalMode) (bool, error) {
	return core.Reachable(g, from, to, mode)
}

// ShortestPath returns one shortest temporal path, or nil if unreachable.
func ShortestPath(g *Graph, from, to TemporalNode, mode CausalMode) (TemporalPath, error) {
	return core.ShortestPath(g, from, to, mode)
}

// EnumeratePaths lists every simple temporal path from from to to with at
// most maxHops hops (0 = unbounded; small graphs only).
func EnumeratePaths(g *Graph, from, to TemporalNode, mode CausalMode, maxHops int) ([]TemporalPath, error) {
	return core.EnumeratePaths(g, from, to, mode, maxHops)
}

// CountWalks counts temporal walks of exactly k hops — the quantity the
// algebraic iterate (A_nᵀ)^k b reports.
func CountWalks(g *Graph, from, to TemporalNode, mode CausalMode, k int) (int64, error) {
	return core.CountWalks(g, from, to, mode, k)
}

// ForwardNeighbors returns the forward neighbours (Def. 5) of a temporal node.
func ForwardNeighbors(g *Graph, tn TemporalNode, mode CausalMode) []TemporalNode {
	return core.ForwardNeighbors(g, tn, mode)
}

// WeightedShortestPaths runs the Dijkstra variant over temporal paths.
func WeightedShortestPaths(g *Graph, root TemporalNode, opts WeightedOptions) (*WeightedResult, error) {
	return core.WeightedShortestPaths(g, root, opts)
}

// ABFS is Algorithm 2: the algebraic BFS over CSC diagonal blocks with
// the ⊙ causal action (Theorem 6 representation).
func ABFS(g *Graph, root TemporalNode, mode CausalMode) (algebra.Reached, error) {
	return algebra.ABFS(g, root, mode)
}

// DenseABFS is Algorithm 2 over the dense compacted A_n (Theorem 5).
func DenseABFS(g *Graph, root TemporalNode, mode CausalMode) (algebra.Reached, error) {
	return algebra.DenseABFS(g, root, mode)
}

// SparseABFS is the sparse-frontier (SpMSpV) algebraic BFS — the
// linear-cost formulation the paper's conclusion calls for as future
// work. Results are identical to ABFS.
func SparseABFS(g *Graph, root TemporalNode, mode CausalMode) (algebra.Reached, error) {
	return algebra.SparseABFS(g, root, mode)
}

// HybridOptions configures the direction-optimizing BFS.
type HybridOptions = core.HybridOptions

// HybridBFS is the direction-optimizing (top-down/bottom-up) Algorithm 1
// variant.
func HybridBFS(g *Graph, root TemporalNode, opts HybridOptions) (*Result, error) {
	return core.HybridBFS(g, root, opts)
}

// DFSEvent labels depth-first traversal callbacks.
type DFSEvent = core.DFSEvent

// Depth-first traversal events.
const (
	Discover = core.Discover
	Finish   = core.Finish
)

// DFS runs a depth-first traversal over temporal forward neighbours.
func DFS(g *Graph, root TemporalNode, opts Options, visit func(TemporalNode, DFSEvent) bool) error {
	return core.DFS(g, root, opts, visit)
}

// ErrCyclic is returned by TopologicalOrder for cyclic snapshots.
var ErrCyclic = core.ErrCyclic

// TopologicalOrder orders all active temporal nodes so every static and
// causal edge points forward; fails with ErrCyclic on cyclic snapshots.
func TopologicalOrder(g *Graph, mode CausalMode) ([]TemporalNode, error) {
	return core.TopologicalOrder(g, mode)
}

// IsTemporalDAG reports whether every snapshot is acyclic (Lemma 1's
// hypothesis).
func IsTemporalDAG(g *Graph) bool { return core.IsTemporalDAG(g) }

// Closure is the all-pairs temporal reachability relation.
type Closure = core.Closure

// TransitiveClosure computes Def. 7 reachability between every pair of
// active temporal nodes.
func TransitiveClosure(g *Graph, mode CausalMode) *Closure {
	return core.TransitiveClosure(g, mode)
}

// TemporalDiameter is the largest finite temporal distance in g.
func TemporalDiameter(g *Graph, mode CausalMode) int {
	return core.TemporalDiameter(g, mode)
}

// SourceStats summarises one source of an all-sources BFS sweep.
type SourceStats = core.SourceStats

// AllSourcesBFS runs a BFS from every active temporal node over a worker
// pool and returns per-source reach/eccentricity/closeness.
func AllSourcesBFS(g *Graph, mode CausalMode, workers int) []SourceStats {
	return core.AllSourcesBFS(g, mode, workers)
}

// EarliestArrival returns, per node, the earliest stamp reachable from
// root (-1 if unreachable).
func EarliestArrival(g *Graph, root TemporalNode, mode CausalMode) ([]int32, error) {
	return core.EarliestArrival(g, root, mode)
}

// ReachIndex answers temporal reachability queries in O(1) after a
// chain-cover preprocessing pass (temporal DAGs only).
type ReachIndex = reachindex.Index

// BuildReachIndex preprocesses a temporal DAG for constant-time
// reachability queries; fails on cyclic snapshots.
func BuildReachIndex(g *Graph, mode CausalMode) (*ReachIndex, error) {
	return reachindex.Build(g, mode)
}

// EfficiencyStats summarises global temporal connectivity.
type EfficiencyStats = metrics.EfficiencyStats

// MetricOptions configures the BFS-backed centralities: causal mode,
// engine selection (the adjacency-map differential oracle vs the
// default CSR engine) and worker fan-out.
type MetricOptions = metrics.Options

// GlobalEfficiency computes mean inverse distance, reachable-pair
// fraction, mean distance and diameter over all ordered pairs.
func GlobalEfficiency(g *Graph, mode CausalMode) EfficiencyStats {
	return metrics.GlobalEfficiency(g, mode)
}

// GlobalEfficiencyOpts is GlobalEfficiency with engine and worker
// control; results are bit-identical across engines and worker counts.
func GlobalEfficiencyOpts(g *Graph, opts MetricOptions) EfficiencyStats {
	return metrics.GlobalEfficiencyOpts(g, opts)
}

// NaivePathSum evaluates the Eq. 2 adjacency-product sum — the baseline
// the paper proves miscounts temporal paths.
func NaivePathSum(g *Graph, uptoStamp int) *matrix.Dense {
	return algebra.NaivePathSum(g, uptoStamp)
}

// BlockMatrix assembles the block upper-triangular adjacency matrix A_n.
func BlockMatrix(g *Graph, mode CausalMode) *matrix.Block {
	return g.BlockMatrix(mode)
}

// Figure1Graph returns the paper's running example (Figs. 1–4).
func Figure1Graph() *Graph { return egraph.Figure1Graph() }

// IntroGameGraph returns the three-player message game of the paper's
// introduction; swapped reverses the two conversations.
func IntroGameGraph(swapped bool) *Graph { return egraph.IntroGameGraph(swapped) }

// Generator configuration types.
type (
	RandomConfig   = gen.RandomConfig
	CitationConfig = gen.CitationConfig
	TimedEdge      = gen.TimedEdge
)

// Random generates the Figure 5 workload: a uniform random evolving graph.
func Random(cfg RandomConfig) *Graph { return gen.Random(cfg) }

// RandomSeries generates the Figure 5 growing-edge-set sequence.
func RandomSeries(nodes, stamps int, edgeCounts []int, directed bool, seed int64) []*Graph {
	return gen.RandomSeries(nodes, stamps, edgeCounts, directed, seed)
}

// GNP generates independent Erdős–Rényi snapshots.
func GNP(n, stamps int, p float64, directed bool, seed int64) *Graph {
	return gen.GNP(n, stamps, p, directed, seed)
}

// PreferentialAttachment generates an evolving scale-free graph.
func PreferentialAttachment(n, stamps, m int, seed int64) *Graph {
	return gen.PreferentialAttachment(n, stamps, m, seed)
}

// SyntheticCitation generates the Sec. V citation-network substitute and
// each author's first-publication stamp.
func SyntheticCitation(cfg CitationConfig) (*Graph, []int32) { return gen.Citation(cfg) }

// DefaultCitationConfig returns a mid-sized citation workload.
func DefaultCitationConfig() CitationConfig { return gen.DefaultCitationConfig() }

// Citation-mining layer (Sec. V).
type (
	CitationAnalyzer = citation.Analyzer
	InfluenceSet     = citation.InfluenceSet
	CitationScore    = citation.Score
)

// NewCitationAnalyzer wraps a citer→cited evolving graph for influence
// queries.
func NewCitationAnalyzer(g *Graph, mode CausalMode) (*CitationAnalyzer, error) {
	return citation.NewAnalyzer(g, mode)
}

// Related-work baselines (see internal/metrics).
func TangTemporalDistance(g *Graph, from TemporalNode, w int32) int {
	return metrics.TangTemporalDistance(g, from, w)
}

// DynamicWalkDistance is the Grindrod–Higham distance: causal hops free.
func DynamicWalkDistance(g *Graph, from, to TemporalNode, mode CausalMode) (int, error) {
	return metrics.DynamicWalkDistance(g, from, to, mode)
}

// DynamicCommunicability is the Grindrod–Higham resolvent iteration.
func DynamicCommunicability(g *Graph, alpha float64) (*matrix.Dense, error) {
	return metrics.DynamicCommunicability(g, alpha)
}

// TemporalCloseness is harmonic closeness over temporal distances.
func TemporalCloseness(g *Graph, root TemporalNode, mode CausalMode) (float64, error) {
	return metrics.TemporalCloseness(g, root, mode)
}

// TemporalClosenessOpts is TemporalCloseness with engine control.
func TemporalClosenessOpts(g *Graph, root TemporalNode, opts MetricOptions) (float64, error) {
	return metrics.TemporalClosenessOpts(g, root, opts)
}

// TemporalBetweenness is Brandes betweenness over the unfolded graph,
// aggregated per node.
func TemporalBetweenness(g *Graph, mode CausalMode) []float64 {
	return metrics.TemporalBetweenness(g, mode)
}

// Connectivity structure.
type Component = components.Component

// ComponentOptions configures the connectivity computations: causal
// mode, engine selection (the adjacency-map differential oracle vs the
// default CSR engine) and worker fan-out for the size-distribution
// sweep.
type ComponentOptions = components.Options

// WeakComponents returns the weakly connected components of the
// unfolded temporal graph, largest first.
func WeakComponents(g *Graph, mode CausalMode) []Component {
	return components.Weak(g, mode)
}

// WeakComponentsOpts is WeakComponents with engine control.
func WeakComponentsOpts(g *Graph, opts ComponentOptions) []Component {
	return components.WeakOpts(g, opts)
}

// StrongComponents returns strongly connected temporal components with
// at least minSize members (cycles live within single stamps).
func StrongComponents(g *Graph, minSize int) []Component {
	return components.Strong(g, minSize)
}

// StrongComponentsOpts is StrongComponents with engine control.
func StrongComponentsOpts(g *Graph, minSize int, opts ComponentOptions) []Component {
	return components.StrongOpts(g, minSize, opts)
}

// OutComponent returns the Def. 7 reachability set of a temporal node.
func OutComponent(g *Graph, root TemporalNode, mode CausalMode) (Component, error) {
	return components.OutComponent(g, root, mode)
}

// ComponentSizeDistribution returns the multiset of out-component sizes
// over all active temporal nodes, sorted descending — the influence
// profile of the graph (Def. 7 / Sec. V). On the default CSR engine the
// per-root searches are fanned across opts.Workers goroutines.
func ComponentSizeDistribution(g *Graph, opts ComponentOptions) []int {
	return components.SizeDistributionOpts(g, opts)
}

// Ranking measures.
type (
	PageRankOptions = rank.PageRankOptions
	PageRankResult  = rank.PageRankResult
	KatzOptions     = rank.KatzOptions
)

// EvolvingPageRank computes per-snapshot PageRank with warm-started
// iteration (the workload of the paper's ref. [2]).
func EvolvingPageRank(g *Graph, opts PageRankOptions) (*PageRankResult, error) {
	return rank.EvolvingPageRank(g, opts)
}

// TemporalKatz computes Katz centrality over the unfolded temporal graph
// via the block matrix kernel; scores are indexed by temporal-node id.
func TemporalKatz(g *Graph, opts KatzOptions) ([]float64, error) {
	return rank.TemporalKatz(g, opts)
}

// Streaming substrate.
type (
	DynamicGraph   = stream.Dynamic
	IncrementalBFS = stream.IncrementalBFS
)

// NewDynamicGraph returns an append-only evolving graph.
func NewDynamicGraph(directed bool) *DynamicGraph { return stream.NewDynamic(directed) }

// NewIncrementalBFS maintains BFS distances from (rootNode, rootLabel) as
// edges stream into d.
func NewIncrementalBFS(d *DynamicGraph, rootNode int32, rootLabel int64) *IncrementalBFS {
	return stream.NewIncrementalBFS(d, rootNode, rootLabel)
}

// Serialization.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) { return egio.ReadEdgeList(r, directed) }

// WriteEdgeList writes the "u v t [w]" text format.
func WriteEdgeList(w io.Writer, g *Graph) error { return egio.WriteEdgeList(w, g) }

// ReadJSON decodes the JSON document format.
func ReadJSON(r io.Reader) (*Graph, error) { return egio.ReadJSON(r) }

// WriteJSON encodes the JSON document format.
func WriteJSON(w io.Writer, g *Graph) error { return egio.WriteJSON(w, g) }

// ReadBinary decodes the compact binary format.
func ReadBinary(r io.Reader) (*Graph, error) { return egio.ReadBinary(r) }

// WriteBinary encodes the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error { return egio.WriteBinary(w, g) }

// DOTOptions configures Graphviz export.
type DOTOptions = egio.DOTOptions

// WriteDOT renders the graph in Graphviz DOT form (one cluster per
// stamp, causal edges dashed — the paper's Fig. 4 layout).
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error { return egio.WriteDOT(w, g, opts) }
