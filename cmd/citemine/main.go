// Command citemine mines influence structure from a citation network
// (Sec. V of the paper): influence sets T(a,t), influencer sets T⁻¹(a,t),
// communities, and an influence ranking.
//
// The network is either loaded from an edge-list file (one
// "citer cited year" line per citation) or generated synthetically.
//
// Usage:
//
//	citemine [-graph citations.txt] [-authors 300] [-stamps 12] [-seed 42]
//	         [-top 10] [-author ID] [-consecutive]
package main

import (
	"flag"
	"fmt"
	"os"

	evolving "repro"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "citation edge-list file (default: synthetic network)")
		authors     = flag.Int("authors", 300, "synthetic: number of authors")
		stamps      = flag.Int("stamps", 12, "synthetic: number of years")
		seed        = flag.Int64("seed", 42, "synthetic: generator seed")
		top         = flag.Int("top", 10, "size of the influence ranking")
		authorFlag  = flag.Int("author", -1, "author to profile in depth (-1 = top ranked)")
		consecutive = flag.Bool("consecutive", false, "consecutive-only causal edges")
	)
	flag.Parse()

	var g *evolving.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fail("open: %v", err)
		}
		g, err = evolving.ReadEdgeList(f, true)
		f.Close()
		if err != nil {
			fail("parse: %v", err)
		}
	} else {
		cfg := evolving.DefaultCitationConfig()
		cfg.Authors = *authors
		cfg.Stamps = *stamps
		cfg.Seed = *seed
		g, _ = evolving.SyntheticCitation(cfg)
		fmt.Printf("# synthetic network: authors=%d stamps=%d seed=%d\n", *authors, *stamps, *seed)
	}
	fmt.Printf("# %d authors, %d years, %d citations, %d active temporal nodes\n",
		g.NumNodes(), g.NumStamps(), g.StaticEdgeCount(), g.NumActiveNodes())

	mode := evolving.CausalAllPairs
	if *consecutive {
		mode = evolving.CausalConsecutive
	}
	an, err := evolving.NewCitationAnalyzer(g, mode)
	if err != nil {
		fail("%v", err)
	}

	scores, err := an.RankByInfluence(*top)
	if err != nil {
		fail("rank: %v", err)
	}
	fmt.Printf("\nTop %d authors by influence reach:\n", len(scores))
	fmt.Printf("%6s %8s %10s\n", "rank", "author", "influence")
	for i, s := range scores {
		fmt.Printf("%6d %8d %10d\n", i+1, s.Author, s.Influence)
	}
	if len(scores) == 0 {
		return
	}

	profile := int32(*authorFlag)
	if profile < 0 {
		profile = scores[0].Author
	}
	stampsOf := g.ActiveStamps(profile)
	if len(stampsOf) == 0 {
		fail("author %d never appears in the network", profile)
	}
	first, last := stampsOf[0], stampsOf[len(stampsOf)-1]

	fwd, err := an.Influence(profile, first)
	if err != nil {
		fail("influence: %v", err)
	}
	back, err := an.Influencers(profile, last)
	if err != nil {
		fail("influencers: %v", err)
	}
	com, err := an.Community(profile, last)
	if err != nil {
		fail("community: %v", err)
	}
	fmt.Printf("\nProfile of author %d (active %d..%d):\n",
		profile, g.TimeLabel(int(first)), g.TimeLabel(int(last)))
	fmt.Printf("  T(a)   influence:   %4d authors / %4d temporal nodes\n",
		fwd.NumAuthors(), len(fwd.TemporalNodes()))
	fmt.Printf("  T⁻¹(a) influencers:  %4d authors (tree leaves: %d)\n",
		back.NumAuthors(), len(back.Leaves()))
	fmt.Printf("  community:           %4d authors\n", com.NumAuthors())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "citemine: "+format+"\n", args...)
	os.Exit(1)
}
