// Command egstats profiles an evolving graph: summary statistics,
// connectivity structure, temporal diameter, and the most central
// temporal nodes — everything an analyst wants before running queries.
//
// Usage:
//
//	egstats -graph g.txt [-undirected] [-binary] [-full] [-workers N]
//
// -full adds the O(|V|·|E|) analyses (diameter, closeness top-5,
// out-component profile); omit it for very large graphs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	evolving "repro"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file (required)")
		undirected = flag.Bool("undirected", false, "treat edges as undirected")
		binary     = flag.Bool("binary", false, "input is the binary format")
		full       = flag.Bool("full", false, "run the all-sources analyses too")
		workers    = flag.Int("workers", 0, "workers for the all-sources sweep")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fail("open: %v", err)
	}
	var g *evolving.Graph
	if *binary {
		g, err = evolving.ReadBinary(f)
	} else {
		g, err = evolving.ReadEdgeList(f, !*undirected)
	}
	f.Close()
	if err != nil {
		fail("parse: %v", err)
	}

	fmt.Print(g.Stats())
	fmt.Printf("  temporal DAG:           %v\n", evolving.IsTemporalDAG(g))

	weak := evolving.WeakComponents(g, evolving.CausalAllPairs)
	fmt.Printf("  weak components:        %d (largest %d temporal nodes)\n",
		len(weak), len(weak[0]))
	sccs := evolving.StrongComponents(g, 2)
	fmt.Printf("  nontrivial SCCs:        %d\n", len(sccs))

	if !*full {
		return
	}
	stats := evolving.AllSourcesBFS(g, evolving.CausalAllPairs, *workers)
	diam, maxReach := 0, 0
	for _, st := range stats {
		if st.Eccentricity > diam {
			diam = st.Eccentricity
		}
		if st.Reached > maxReach {
			maxReach = st.Reached
		}
	}
	fmt.Printf("  temporal diameter:      %d\n", diam)
	fmt.Printf("  max out-component:      %d of %d temporal nodes\n",
		maxReach, g.NumActiveNodes())

	sort.Slice(stats, func(i, j int) bool { return stats[i].Closeness > stats[j].Closeness })
	fmt.Println("  top temporal closeness:")
	for i := 0; i < len(stats) && i < 5; i++ {
		st := stats[i]
		fmt.Printf("    %v  closeness %.3f  reach %d  ecc %d\n",
			st.Root, st.Closeness, st.Reached, st.Eccentricity)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "egstats: "+format+"\n", args...)
	os.Exit(1)
}
