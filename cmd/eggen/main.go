// Command eggen generates evolving-graph workloads and writes them as
// edge lists (or JSON), so egbfs/citemine and external tooling can share
// inputs. It also prints the graph's summary statistics to stderr.
//
// Usage:
//
//	eggen -model random -nodes 1000 -stamps 10 -edges 5000 [-seed 1]
//	      [-undirected] [-json] [-o out.txt]
//	eggen -model gnp -nodes 100 -stamps 5 -p 0.05
//	eggen -model pa -nodes 1000 -stamps 10 -m 3
//	eggen -model citation -nodes 300 -stamps 12
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	evolving "repro"
)

func main() {
	var (
		model      = flag.String("model", "random", "random | gnp | pa | citation")
		nodes      = flag.Int("nodes", 1000, "node count / authors")
		stamps     = flag.Int("stamps", 10, "time stamps")
		edges      = flag.Int("edges", 5000, "random: static edge count")
		p          = flag.Float64("p", 0.05, "gnp: edge probability")
		m          = flag.Int("m", 3, "pa: edges per arriving node")
		seed       = flag.Int64("seed", 1, "generator seed")
		undirected = flag.Bool("undirected", false, "undirected edges (random/gnp)")
		asJSON     = flag.Bool("json", false, "emit JSON instead of edge list")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *evolving.Graph
	switch *model {
	case "random":
		g = evolving.Random(evolving.RandomConfig{
			Nodes: *nodes, Stamps: *stamps, Edges: *edges,
			Directed: !*undirected, Seed: *seed,
		})
	case "gnp":
		g = evolving.GNP(*nodes, *stamps, *p, !*undirected, *seed)
	case "pa":
		g = evolving.PreferentialAttachment(*nodes, *stamps, *m, *seed)
	case "citation":
		cfg := evolving.DefaultCitationConfig()
		cfg.Authors = *nodes
		cfg.Stamps = *stamps
		cfg.Seed = *seed
		g, _ = evolving.SyntheticCitation(cfg)
	default:
		fail("unknown model %q", *model)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("create: %v", err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *asJSON {
		err = evolving.WriteJSON(w, g)
	} else {
		err = evolving.WriteEdgeList(w, g)
	}
	if err != nil {
		fail("write: %v", err)
	}
	fmt.Fprint(os.Stderr, g.Stats())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "eggen: "+format+"\n", args...)
	os.Exit(1)
}
