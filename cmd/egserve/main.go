// Command egserve serves an evolving graph over HTTP: the seed query
// endpoints (BFS distances, shortest temporal paths, reachability,
// forward neighbours, path-optimality criteria) plus the analytics
// layer (components, influence maximisation, closeness, efficiency,
// temporal Katz) behind a versioned result cache with singleflight
// collapse and a bounded in-flight computation gate. See
// internal/server for the endpoint reference and DESIGN.md §10 for the
// serving architecture.
//
// Usage:
//
//	egserve [-addr :8080] [-graph edges.txt]
//	        [-nodes 1000] [-stamps 10] [-edges 10000] [-seed 42]
//	        [-cache 1024] [-inflight 0] [-workers 0]
//	        [-write-timeout 0] [-shutdown-timeout 10s]
//
// Without -graph a random evolving graph is generated and served. The
// process shuts down gracefully on SIGINT/SIGTERM: the listener stops,
// in-flight requests get -shutdown-timeout to drain, then the process
// exits.
//
// Example session:
//
//	$ egserve &
//	$ curl 'localhost:8080/stats'
//	$ curl 'localhost:8080/components/weak'
//	$ curl 'localhost:8080/influence/greedy?k=5'
//	$ curl 'localhost:8080/metrics'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	evolving "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "edge-list file (default: random graph)")
		nodes     = flag.Int("nodes", 1_000, "random: node count")
		stamps    = flag.Int("stamps", 10, "random: stamp count")
		edges     = flag.Int("edges", 10_000, "random: static edge count")
		seed      = flag.Int64("seed", 42, "random: generator seed")

		cacheCap = flag.Int("cache", 1024, "analytics result-cache capacity (entries)")
		inflight = flag.Int("inflight", 0, "max concurrently computing expensive queries (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "per-computation analytics fan-out (0 = GOMAXPROCS)")

		writeTimeout    = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none; cold analytics queries can be slow)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	var g *evolving.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("egserve: open: %v", err)
		}
		g, err = evolving.ReadEdgeList(f, true)
		f.Close()
		if err != nil {
			log.Fatalf("egserve: parse: %v", err)
		}
	} else {
		g = evolving.Random(evolving.RandomConfig{
			Nodes: *nodes, Stamps: *stamps, Edges: *edges, Directed: true, Seed: *seed,
		})
		fmt.Printf("serving random graph: nodes=%d stamps=%d edges=%d seed=%d\n",
			*nodes, *stamps, *edges, *seed)
	}

	handler := server.New(g, server.Config{
		CacheCapacity: *cacheCap,
		MaxInFlight:   *inflight,
		Workers:       *workers,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris protection on headers; write deadline is opt-in
		// because a cold all-sources analytics query may legitimately
		// outlive any fixed response budget.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("listening on %s — try /stats, /components/weak, /influence/greedy?k=5, /metrics\n", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("egserve: %v", err)
	case <-ctx.Done():
		stop()
		fmt.Println("\nshutting down (signal received)…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("egserve: shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("egserve: %v", err)
		}
		fmt.Println("drained; bye")
	}
}
