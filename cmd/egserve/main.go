// Command egserve serves an evolving graph over HTTP: the seed query
// endpoints (BFS distances, shortest temporal paths, reachability,
// forward neighbours, path-optimality criteria) plus the analytics
// layer (components, influence maximisation, closeness, efficiency,
// temporal Katz) behind a versioned result cache with singleflight
// collapse and a bounded in-flight computation gate. With -wal the
// server is live: POST /ingest/arcs appends durable mutation batches
// that an epoch compactor folds into fresh snapshots while reads keep
// flowing. See internal/server for the endpoint reference and
// DESIGN.md §10–11 for the serving architecture and the write path.
//
// Usage:
//
//	egserve [-addr :8080] [-graph edges.txt]
//	        [-nodes 1000] [-stamps 10] [-edges 10000] [-seed 42]
//	        [-cache 1024] [-inflight 0] [-workers 0]
//	        [-wal events.wal] [-fsync interval] [-fsync-interval 100ms]
//	        [-compact-every 4096] [-compact-interval 2s] [-max-pending 65536]
//	        [-checkpoint auto] [-checkpoint-every 8] [-checkpoint-interval 60s]
//	        [-full-rebuild] [-inc=true] [-write-timeout 0] [-shutdown-timeout 10s]
//	        [-pprof localhost:6060] [-trace-sample 64] [-trace-slow 250ms]
//	        [-fault scenario] [-serve-stale]
//
// -fault arms the internal/fault injection sites (WAL append/fsync,
// checkpoint write/fsync/rename, wire accept/read/write, query
// compute) with a named scenario, a scenario file, or inline DSL text;
// -serve-stale enables the degraded read mode that answers from the
// last good cached result (X-Cache: stale) when a compute fails
// server-side. A WAL disk-full or persistent fsync failure flips the
// process into read-only degraded mode: ingest answers 503 with
// Retry-After, reads keep serving, /healthz reports "degraded" and
// eg_degraded{}=1.
//
// The HTTP listener opens before recovery: /healthz answers 200
// immediately while /readyz stays 503 until the first graph installs
// (egload -waitReady polls it). /metrics.prom exposes the whole
// process — serve latency by endpoint × cache outcome × transport,
// per-stage epoch timings, feed lag, runtime gauges — as Prometheus
// text; /debug/traces dumps sampled and slow request traces; -pprof
// serves the Go profiler on its own port.
//
// Without -graph a random evolving graph is generated and served. With
// -wal the server boots recover-then-serve: it mmaps the newest valid
// checkpoint (-checkpoint; "auto" means <wal>.ckpt) and folds only the
// WAL tail past the checkpoint's covered sequence, falling back to the
// base graph plus a full replay when no checkpoint validates. Either
// path reproduces the pre-crash graph exactly; the compactor then
// persists fresh checkpoints every -checkpoint-every epochs or
// -checkpoint-interval, whichever comes first. The write endpoints
// accept new batches. The process shuts down gracefully on
// SIGINT/SIGTERM: the listener stops, in-flight requests get
// -shutdown-timeout to drain, pending events are folded, a final
// full-coverage checkpoint is written and the WAL is synced, then the
// process exits.
//
// Example session:
//
//	$ egserve -wal events.wal &
//	$ curl 'localhost:8080/stats'
//	$ printf '{"op":"stamp","t":11}\n{"op":"add","u":1,"v":2,"t":11}\n' | \
//	    curl -s -XPOST --data-binary @- 'localhost:8080/ingest/arcs'
//	$ curl 'localhost:8080/ingest/stats'
//	$ curl 'localhost:8080/components/weak'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	evolving "repro"
	"repro/internal/fault"
	"repro/internal/inc"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/server"
)

// swapHandler atomically swaps the whole HTTP surface: the listener
// opens before WAL recovery starts, serving a bootstrap handler whose
// /readyz answers 503 until the real server (first graph installed) is
// swapped in. Load balancers and egload -waitReady therefore measure
// restart-to-ready, while /healthz reports the process live the whole
// time.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) { s.h.Store(&h) }

// The bootstrap surface itself lives in internal/server (Bootstrap):
// liveness yes, readiness no, everything else 503 + Retry-After —
// shared with the server package's Retry-After consistency tests.

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		wireAddr  = flag.String("wire-addr", "", "EGWP binary-protocol listen address (e.g. :8081); empty disables the second listener")
		graphPath = flag.String("graph", "", "edge-list file (default: random graph)")
		nodes     = flag.Int("nodes", 1_000, "random: node count")
		stamps    = flag.Int("stamps", 10, "random: stamp count")
		edges     = flag.Int("edges", 10_000, "random: static edge count")
		seed      = flag.Int64("seed", 42, "random: generator seed")

		cacheCap = flag.Int("cache", 1024, "analytics result-cache capacity (entries)")
		inflight = flag.Int("inflight", 0, "max concurrently computing expensive queries (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "per-computation analytics fan-out (0 = GOMAXPROCS)")

		walPath         = flag.String("wal", "", "write-ahead log path; enables the ingest endpoints (recover-then-serve)")
		fsyncPolicy     = flag.String("fsync", "interval", "WAL fsync policy: always, interval or never")
		fsyncInterval   = flag.Duration("fsync-interval", 100*time.Millisecond, "WAL background fsync period (policy interval)")
		compactEvery    = flag.Int("compact-every", 4096, "fold the pending delta after this many events")
		compactInterval = flag.Duration("compact-interval", 2*time.Second, "fold any pending delta at least this often")
		maxPending      = flag.Int("max-pending", 1<<16, "pending-delta bound; writes beyond it get 429")
		checkpoint      = flag.String("checkpoint", "auto", `checkpoint file for O(1) warm restart: "auto" = <wal>.ckpt, "none" disables (needs -wal)`)
		checkpointEvery = flag.Int("checkpoint-every", 8, "persist a checkpoint after this many epochs")
		checkpointIval  = flag.Duration("checkpoint-interval", 60*time.Second, "persist a checkpoint at least this often when new batches were folded")
		ckptStallWrite  = flag.Duration("checkpoint-stall-write", 0, "fault injection: stall mid-way through the checkpoint body write (crash-test hook)")
		ckptStallRename = flag.Duration("checkpoint-stall-rename", 0, "fault injection: stall after the checkpoint sync, before the rename (crash-test hook)")
		faultSpec       = flag.String("fault", "", "fault-injection scenario: a named scenario (disk-full, fsync-stall, conn-flap, slow-compute), a scenario file, or inline text (internal/fault DSL); empty disables")
		serveStale      = flag.Bool("serve-stale", false, "degraded read mode: serve the last good cached answer (X-Cache: stale) when a compute fails server-side or its deadline budget runs out")
		fullRebuild     = flag.Bool("full-rebuild", false, "compact via the full Fold rebuild instead of the incremental Patch (the differential oracle; slower, same results)")
		incAnalytics    = flag.Bool("inc", true, "maintain weak components and temporal Katz incrementally across compactions; /components/weak and /katz serve the maintained results")

		writeTimeout    = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none; cold analytics queries can be slow)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")

		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
		traceSample = flag.Int("trace-sample", 0, "trace every Nth request into /debug/traces (0 = obs default 1/64, negative disables sampling)")
		traceSlow   = flag.Duration("trace-slow", 0, "retain traces slower than this in the slow ring (0 = obs default 250ms)")
	)
	flag.Parse()

	// One metric registry for the whole process: the server's families,
	// the write path's epoch-stage histograms, and the runtime gauges
	// all render through a single /metrics.prom scrape.
	reg := obs.NewRegistry()

	// One injector arms every site — WAL, checkpoint, wire, compute —
	// so a single -fault scenario exercises the whole process the way
	// the chaos soak does.
	var faults *fault.Injector
	if *faultSpec != "" {
		text := fault.Named(*faultSpec)
		if text == "" {
			if body, err := os.ReadFile(*faultSpec); err == nil {
				text = string(body)
			} else {
				text = *faultSpec // inline scenario text
			}
		}
		sc, err := fault.Parse(text)
		if err != nil {
			log.Fatalf("egserve: -fault %q: %v", *faultSpec, err)
		}
		faults = fault.New(sc)
		fmt.Printf("fault injection armed:\n%s", sc.String())
	}

	// Open the listener before recovery so restarts are observable:
	// /healthz answers immediately while /readyz stays 503 until the
	// first graph is installed.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("egserve: listen: %v", err)
	}
	boot := &swapHandler{}
	boot.swap(server.Bootstrap())
	srv := &http.Server{
		Handler: boot,
		// Slowloris protection on headers; write deadline is opt-in
		// because a cold all-sources analytics query may legitimately
		// outlive any fixed response budget.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("listening on %s (recovering; /readyz 503 until the first graph installs)\n", *addr)

	if *pprofAddr != "" {
		// The profiler gets its own mux on its own listener: nothing
		// registers into http.DefaultServeMux, and the query port never
		// exposes profiling data.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("egserve: pprof: %v", err)
			}
		}()
		fmt.Printf("pprof on %s — go tool pprof http://%s/debug/pprof/heap\n", *pprofAddr, *pprofAddr)
	}

	// base lazily builds the seed graph the WAL was recorded against.
	// On a checkpoint boot it is never invoked: the mmap'd checkpoint
	// plus the WAL tail is the whole graph, so a warm restart skips
	// generation/parsing entirely.
	base := func() (*evolving.Graph, error) {
		if *graphPath != "" {
			f, err := os.Open(*graphPath)
			if err != nil {
				return nil, fmt.Errorf("open: %w", err)
			}
			defer f.Close()
			g, err := evolving.ReadEdgeList(f, true)
			if err != nil {
				return nil, fmt.Errorf("parse: %w", err)
			}
			return g, nil
		}
		g := evolving.Random(evolving.RandomConfig{
			Nodes: *nodes, Stamps: *stamps, Edges: *edges, Directed: true, Seed: *seed,
		})
		fmt.Printf("serving random graph: nodes=%d stamps=%d edges=%d seed=%d\n",
			*nodes, *stamps, *edges, *seed)
		return g, nil
	}

	ckptPath := ""
	if *walPath != "" {
		switch *checkpoint {
		case "", "none":
		case "auto":
			ckptPath = *walPath + ".ckpt"
		default:
			ckptPath = *checkpoint
		}
	}

	// Recover-then-serve: mmap the newest valid checkpoint and fold
	// only the WAL tail past its covered sequence; fall back to the
	// base graph plus a full replay when no checkpoint validates. The
	// mapping lives for the life of the process.
	var (
		g   *evolving.Graph
		wal *ingest.WAL
		res *ingest.RecoverResult
	)
	if *walPath != "" {
		policy, err := ingest.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("egserve: %v", err)
		}
		t0 := time.Now()
		res, err = ingest.Recover(ingest.RecoverConfig{
			WALPath:        *walPath,
			WALOptions:     ingest.WALOptions{Policy: policy, Interval: *fsyncInterval, Faults: faults},
			CheckpointPath: ckptPath,
			Base:           base,
			Logf: func(format string, args ...interface{}) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			log.Fatalf("egserve: %v", err)
		}
		g = res.Graph
		wal = res.WAL
		if res.Recovery.Torn {
			fmt.Printf("WAL %s: torn tail (%d bytes) truncated at the last complete record\n",
				*walPath, res.Recovery.TruncatedBytes)
		}
		fmt.Printf("recovered via %s in %s (%d nodes, %d stamps)\n",
			res.Path, time.Since(t0).Round(time.Millisecond), g.NumNodes(), g.NumStamps())
	} else {
		var err error
		g, err = base()
		if err != nil {
			log.Fatalf("egserve: %v", err)
		}
	}

	handler := server.New(g, server.Config{
		CacheCapacity: *cacheCap,
		MaxInFlight:   *inflight,
		Workers:       *workers,
		Registry:      reg,
		Trace:         obs.TracerOptions{SampleEvery: *traceSample, Slow: *traceSlow},
		Faults:        faults,
		ServeStale:    *serveStale,
	})
	var lg *ingest.Log
	if wal != nil {
		var maint *inc.Maintainer
		if *incAnalytics {
			maint = inc.New(inc.Config{})
		}
		var err error
		lg, err = ingest.New(handler, ingest.Config{
			WAL:             wal,
			Faults:          faults,
			CompactEvery:    *compactEvery,
			CompactInterval: *compactInterval,
			MaxPending:      *maxPending,
			Registry:        reg,
			// Labels the recovered stream mentioned stay writable even
			// when the fold dropped their stamps (e.g. all arcs
			// removed); on a checkpoint boot this is the checkpoint's
			// label set plus the tail's.
			ExtraLabels:           res.ExtraLabels,
			UseFullRebuild:        *fullRebuild,
			Analytics:             maint,
			CheckpointPath:        ckptPath,
			CheckpointEvery:       *checkpointEvery,
			CheckpointInterval:    *checkpointIval,
			CheckpointStallWrite:  *ckptStallWrite,
			CheckpointStallRename: *ckptStallRename,
			LastCheckpointSeq:     res.CheckpointSeq,
			RecoverPath:           res.Path,
			TailRecordsReplayed:   res.TailEvents,
		})
		if err != nil {
			log.Fatalf("egserve: %v", err)
		}
		handler.AttachIngest(lg)
		fmt.Printf("ingest enabled: wal=%s fsync=%s compact-every=%d compact-interval=%s checkpoint=%s inc=%t\n",
			*walPath, *fsyncPolicy, *compactEvery, *compactInterval, ckptPath, *incAnalytics)
	}
	// The first graph is installed: swap the real surface in. From here
	// /readyz answers 200 and every endpoint serves.
	boot.swap(handler)
	fmt.Printf("ready on %s — try /stats, /components/weak, /metrics.prom, /debug/traces\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The EGWP binary protocol listens on its own port: same queries,
	// same cache, plus pushed change-feed subscriptions (DESIGN.md §15).
	var wireLn net.Listener
	if *wireAddr != "" {
		var err error
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("egserve: wire listen: %v", err)
		}
		go func() {
			if err := handler.ServeWire(wireLn); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("egserve: wire: %v", err)
			}
		}()
		fmt.Printf("wire protocol on %s — egclient.DialWire or egload -transport wire\n", *wireAddr)
	}

	select {
	case err := <-errCh:
		log.Fatalf("egserve: %v", err)
	case <-ctx.Done():
		stop()
		fmt.Println("\nshutting down (signal received)…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("egserve: shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("egserve: %v", err)
		}
		if wireLn != nil {
			wireLn.Close()
		}
		// Closing the hub wakes every change-feed subscriber with a
		// terminal error before the process exits.
		handler.FeedHub().Close()
		if lg != nil {
			// Final fold + WAL sync so nothing acknowledged is lost.
			if err := lg.Close(); err != nil {
				log.Fatalf("egserve: closing ingest: %v", err)
			}
		}
		fmt.Println("drained; bye")
	}
}
