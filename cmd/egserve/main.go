// Command egserve serves an evolving graph over HTTP: the seed query
// endpoints (BFS distances, shortest temporal paths, reachability,
// forward neighbours, path-optimality criteria) plus the analytics
// layer (components, influence maximisation, closeness, efficiency,
// temporal Katz) behind a versioned result cache with singleflight
// collapse and a bounded in-flight computation gate. With -wal the
// server is live: POST /ingest/arcs appends durable mutation batches
// that an epoch compactor folds into fresh snapshots while reads keep
// flowing. See internal/server for the endpoint reference and
// DESIGN.md §10–11 for the serving architecture and the write path.
//
// Usage:
//
//	egserve [-addr :8080] [-graph edges.txt]
//	        [-nodes 1000] [-stamps 10] [-edges 10000] [-seed 42]
//	        [-cache 1024] [-inflight 0] [-workers 0]
//	        [-wal events.wal] [-fsync interval] [-fsync-interval 100ms]
//	        [-compact-every 4096] [-compact-interval 2s] [-max-pending 65536]
//	        [-full-rebuild] [-inc=true] [-write-timeout 0] [-shutdown-timeout 10s]
//
// Without -graph a random evolving graph is generated and served. With
// -wal the file's event stream is replayed onto that base graph before
// serving (recover-then-serve: restarting with the same -graph/-seed
// flags and the same WAL always reproduces the pre-crash graph), and
// the write endpoints accept new batches. The process shuts down
// gracefully on SIGINT/SIGTERM: the listener stops, in-flight requests
// get -shutdown-timeout to drain, pending events are folded and the
// WAL is synced, then the process exits.
//
// Example session:
//
//	$ egserve -wal events.wal &
//	$ curl 'localhost:8080/stats'
//	$ printf '{"op":"stamp","t":11}\n{"op":"add","u":1,"v":2,"t":11}\n' | \
//	    curl -s -XPOST --data-binary @- 'localhost:8080/ingest/arcs'
//	$ curl 'localhost:8080/ingest/stats'
//	$ curl 'localhost:8080/components/weak'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	evolving "repro"
	"repro/internal/inc"
	"repro/internal/ingest"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "edge-list file (default: random graph)")
		nodes     = flag.Int("nodes", 1_000, "random: node count")
		stamps    = flag.Int("stamps", 10, "random: stamp count")
		edges     = flag.Int("edges", 10_000, "random: static edge count")
		seed      = flag.Int64("seed", 42, "random: generator seed")

		cacheCap = flag.Int("cache", 1024, "analytics result-cache capacity (entries)")
		inflight = flag.Int("inflight", 0, "max concurrently computing expensive queries (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "per-computation analytics fan-out (0 = GOMAXPROCS)")

		walPath         = flag.String("wal", "", "write-ahead log path; enables the ingest endpoints (recover-then-serve)")
		fsyncPolicy     = flag.String("fsync", "interval", "WAL fsync policy: always, interval or never")
		fsyncInterval   = flag.Duration("fsync-interval", 100*time.Millisecond, "WAL background fsync period (policy interval)")
		compactEvery    = flag.Int("compact-every", 4096, "fold the pending delta after this many events")
		compactInterval = flag.Duration("compact-interval", 2*time.Second, "fold any pending delta at least this often")
		maxPending      = flag.Int("max-pending", 1<<16, "pending-delta bound; writes beyond it get 429")
		fullRebuild     = flag.Bool("full-rebuild", false, "compact via the full Fold rebuild instead of the incremental Patch (the differential oracle; slower, same results)")
		incAnalytics    = flag.Bool("inc", true, "maintain weak components and temporal Katz incrementally across compactions; /components/weak and /katz serve the maintained results")

		writeTimeout    = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none; cold analytics queries can be slow)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	var g *evolving.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("egserve: open: %v", err)
		}
		var rerr error
		g, rerr = evolving.ReadEdgeList(f, true)
		f.Close()
		if rerr != nil {
			log.Fatalf("egserve: parse: %v", rerr)
		}
	} else {
		g = evolving.Random(evolving.RandomConfig{
			Nodes: *nodes, Stamps: *stamps, Edges: *edges, Directed: true, Seed: *seed,
		})
		fmt.Printf("serving random graph: nodes=%d stamps=%d edges=%d seed=%d\n",
			*nodes, *stamps, *edges, *seed)
	}

	// Recover-then-serve: replay the WAL's event stream onto the base
	// graph before taking traffic, so a restarted server picks up
	// exactly where the killed one left off.
	var (
		wal *ingest.WAL
		rec *ingest.Recovery
	)
	if *walPath != "" {
		policy, err := ingest.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("egserve: %v", err)
		}
		wal, rec, err = ingest.OpenWAL(*walPath, ingest.WALOptions{Policy: policy, Interval: *fsyncInterval})
		if err != nil {
			log.Fatalf("egserve: %v", err)
		}
		if rec.Torn {
			fmt.Printf("WAL %s: torn tail (%d bytes) truncated at the last complete record\n",
				*walPath, rec.TruncatedBytes)
		}
		if len(rec.Events) > 0 {
			t0 := time.Now()
			g = ingest.Fold(g, rec.Events)
			fmt.Printf("WAL %s: recovered %d events in %d batches, folded in %s (%d nodes, %d stamps)\n",
				*walPath, len(rec.Events), rec.Batches, time.Since(t0).Round(time.Millisecond),
				g.NumNodes(), g.NumStamps())
		}
	}

	handler := server.New(g, server.Config{
		CacheCapacity: *cacheCap,
		MaxInFlight:   *inflight,
		Workers:       *workers,
	})
	var lg *ingest.Log
	if wal != nil {
		// Labels the event stream mentioned stay writable even when
		// the fold dropped their stamps (e.g. all arcs removed).
		extra := make([]int64, 0, len(rec.Events))
		for _, e := range rec.Events {
			extra = append(extra, e.T)
		}
		var maint *inc.Maintainer
		if *incAnalytics {
			maint = inc.New(inc.Config{})
		}
		var err error
		lg, err = ingest.New(handler, ingest.Config{
			WAL:             wal,
			CompactEvery:    *compactEvery,
			CompactInterval: *compactInterval,
			MaxPending:      *maxPending,
			ExtraLabels:     extra,
			UseFullRebuild:  *fullRebuild,
			Analytics:       maint,
		})
		if err != nil {
			log.Fatalf("egserve: %v", err)
		}
		handler.AttachIngest(lg)
		fmt.Printf("ingest enabled: wal=%s fsync=%s compact-every=%d compact-interval=%s inc=%t\n",
			*walPath, *fsyncPolicy, *compactEvery, *compactInterval, *incAnalytics)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris protection on headers; write deadline is opt-in
		// because a cold all-sources analytics query may legitimately
		// outlive any fixed response budget.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("listening on %s — try /stats, /components/weak, /influence/greedy?k=5, /metrics\n", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("egserve: %v", err)
	case <-ctx.Done():
		stop()
		fmt.Println("\nshutting down (signal received)…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("egserve: shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("egserve: %v", err)
		}
		if lg != nil {
			// Final fold + WAL sync so nothing acknowledged is lost.
			if err := lg.Close(); err != nil {
				log.Fatalf("egserve: closing ingest: %v", err)
			}
		}
		fmt.Println("drained; bye")
	}
}
