// Command egserve serves an evolving graph over HTTP: BFS distances,
// shortest temporal paths, reachability, forward neighbours, and the
// four path-optimality criteria as JSON endpoints (see internal/server
// for the endpoint reference).
//
// Usage:
//
//	egserve [-addr :8080] [-graph edges.txt]
//	        [-nodes 1000] [-stamps 10] [-edges 10000] [-seed 42]
//
// Without -graph a random evolving graph is generated and served.
//
// Example session:
//
//	$ egserve &
//	$ curl 'localhost:8080/stats'
//	$ curl 'localhost:8080/bfs?node=0&stamp=0'
//	$ curl 'localhost:8080/criteria?src=0&dst=7'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	evolving "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "edge-list file (default: random graph)")
		nodes     = flag.Int("nodes", 1_000, "random: node count")
		stamps    = flag.Int("stamps", 10, "random: stamp count")
		edges     = flag.Int("edges", 10_000, "random: static edge count")
		seed      = flag.Int64("seed", 42, "random: generator seed")
	)
	flag.Parse()

	var g *evolving.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("egserve: open: %v", err)
		}
		g, err = evolving.ReadEdgeList(f, true)
		f.Close()
		if err != nil {
			log.Fatalf("egserve: parse: %v", err)
		}
	} else {
		g = evolving.Random(evolving.RandomConfig{
			Nodes: *nodes, Stamps: *stamps, Edges: *edges, Directed: true, Seed: *seed,
		})
		fmt.Printf("serving random graph: nodes=%d stamps=%d edges=%d seed=%d\n",
			*nodes, *stamps, *edges, *seed)
	}
	fmt.Printf("listening on %s — try /stats, /bfs?node=0&stamp=0, /criteria?src=0&dst=1\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.Handler(g)))
}
