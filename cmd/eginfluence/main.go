// Command eginfluence selects maximally influential seed sets and ranks
// nodes by estimated influence on an evolving graph — the scaled-up
// version of the paper's Sec. V citation mining.
//
// The graph is either loaded from an edge-list file (one "u v t" line
// per edge) or generated as a synthetic citation network. Two analyses
// run: a sketched influence ranking (bottom-k reach sketches, near-
// linear total time) and CELF greedy seed selection (exact coverage,
// (1−1/e)-approximate joint influence).
//
// Usage:
//
//	eginfluence [-graph edges.txt] [-authors 300] [-stamps 12] [-seed 42]
//	            [-seeds 5] [-sketchk 64] [-top 10] [-citation]
package main

import (
	"flag"
	"fmt"
	"os"

	evolving "repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (default: synthetic citation network)")
		authors   = flag.Int("authors", 300, "synthetic: number of authors")
		stamps    = flag.Int("stamps", 12, "synthetic: number of years")
		seed      = flag.Int64("seed", 42, "synthetic: generator seed")
		seeds     = flag.Int("seeds", 5, "greedy seed-set size")
		sketchK   = flag.Int("sketchk", 64, "sketch size k (accuracy ≈ 1/√(k−2))")
		top       = flag.Int("top", 10, "size of the sketched ranking")
		citation  = flag.Bool("citation", true, "treat edges as citations (influence flows against edges)")
	)
	flag.Parse()

	var g *evolving.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fail("open: %v", err)
		}
		g, err = evolving.ReadEdgeList(f, true)
		f.Close()
		if err != nil {
			fail("parse: %v", err)
		}
	} else {
		cfg := evolving.DefaultCitationConfig()
		cfg.Authors = *authors
		cfg.Stamps = *stamps
		cfg.Seed = *seed
		g, _ = evolving.SyntheticCitation(cfg)
		fmt.Printf("# synthetic citation network: authors=%d stamps=%d seed=%d\n",
			*authors, *stamps, *seed)
	}
	fmt.Printf("# %d nodes, %d stamps, %d static edges\n",
		g.NumNodes(), g.NumStamps(), g.StaticEdgeCount())

	// Sketched ranking runs on the forward orientation (reach of a
	// temporal node); greedy honours the citation direction.
	fmt.Printf("\n== sketched influence ranking (k=%d) ==\n", *sketchK)
	est, err := evolving.BuildReachSketches(g, evolving.CausalConsecutive, *sketchK, *seed)
	if err != nil {
		fail("sketch: %v", err)
	}
	for i, ne := range est.TopK(*top) {
		fmt.Printf("%3d. node %5d  reach ≈ %8.1f\n", i+1, ne.Node, ne.Influence)
	}

	fmt.Printf("\n== greedy seed selection (CELF, k=%d) ==\n", *seeds)
	opts := evolving.InfluenceOptions{ReverseEdges: *citation}
	selected, err := evolving.GreedyInfluence(g, *seeds, opts)
	if err != nil {
		fail("greedy: %v", err)
	}
	if len(selected) == 0 {
		fmt.Println("no influential seeds (graph has no active nodes)")
		return
	}
	for i, s := range selected {
		fmt.Printf("%3d. node %5d  marginal +%-6d cumulative %d/%d\n",
			i+1, s.Node, s.Gain, s.Covered, g.NumNodes())
	}
	frac := float64(selected[len(selected)-1].Covered) / float64(g.NumNodes())
	fmt.Printf("joint coverage: %.1f%% of all nodes\n", 100*frac)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "eginfluence: "+format+"\n", args...)
	os.Exit(1)
}
