// Command egbench regenerates the paper's Figure 5: wall-clock time of
// Algorithm 1 against the number of static edges |Ẽ| on random evolving
// graphs, plus a least-squares check of the linear shape (Theorem 2).
//
// The paper's run used 10⁵ active nodes, 10 stamps and |Ẽ| from ~1×10⁸
// to ~5×10⁸ on one core of a 1 TB Xeon box. Defaults here are laptop
// sized; raise -edges to approach the paper's scale if you have the RAM.
//
// With -compare the harness instead races the CSR/bitset engine
// (the default, DESIGN.md §8) against the adjacency-map oracle
// (Options.UseAdjacencyMaps) across the suites named by -suites:
//
//   - bfs: single-source BFS (plus the parallel CSR engine) on the
//     generator workloads named by -workloads;
//   - components: components.SizeDistribution — one BFS per active
//     temporal node, fanned across workers on the CSR engine;
//   - influence: influence.Greedy seed selection (k=5, CELF) with
//     concurrent CSR reach-set evaluation;
//   - closeness: metrics.GlobalEfficiency — the all-pairs efficiency
//     sweep;
//   - compact: epoch-compaction latency vs delta size — the
//     incremental copy-on-write PatchEvents + parallel arena-reused
//     CSR build (engine "patch") raced against the full FoldEvents
//     rebuild + sequential build (engine "fold", the seed behaviour)
//     on a -compactNodes/-compactEdges base graph, one row pair per
//     -compactDeltas entry, with a bit-identical-graph assertion
//     before any time is reported;
//   - csr: flat-CSR build time, sequential (engine "csr-seq") vs
//     parallel with arena reuse (engine "csr-par"), on the same base
//     graph, asserting bit-identical views;
//   - inc: incrementally maintained analytics (internal/inc) — the
//     maintainer rolling weak components and both causal modes'
//     temporal Katz across chained epochs of -compactDeltas events
//     (engine "inc") raced against the verbatim full recomputations
//     those analytics would otherwise cost per epoch (engine "full"),
//     on the same -compactNodes/-compactEdges base, with per-epoch
//     oracle-equivalence assertions before any time is reported;
//   - recover: warm-restart latency — booting to a query-ready graph
//     through the mmap'd checkpoint plus a WAL-tail fold (engine
//     "ckpt") raced against the full replay the seed performed
//     (engine "replay"), one row pair per -compactDeltas tail size on
//     the same base graph, with a bit-identical-graph assertion
//     before any time is reported.
//
// The analytics suites run on a random-workload ladder sized by
// -suiteNodes/-suiteEdges (they cost one BFS per active temporal node
// per engine, so they use smaller graphs than the bfs suite). Engine
// outputs are checked for equality before any time is reported.
//
// -json FILE writes every measurement (either mode) as a JSON array so
// results can be tracked across runs. -failBelow X is the CI
// regression gate: with -compare it exits non-zero if the new engine's
// speedup over its oracle (csr vs maps, patch vs fold, csr-par vs
// csr-seq) at the largest graph of any workload falls below X
// (cross-engine result mismatches always abort).
//
// Usage:
//
//	egbench [-nodes 100000] [-stamps 10] [-edges 500000,1000000,...]
//	        [-seed 2016] [-reps 3] [-parallel] [-workers N]
//	        [-compare] [-suites bfs,components,influence,closeness,compact,csr,inc,recover]
//	        [-workloads random,citation,gnp,pref]
//	        [-suiteNodes 500] [-suiteEdges 5000,10000,20000,40000]
//	        [-compactNodes 100000] [-compactEdges 1000000]
//	        [-compactDeltas 10,1000,100000] [-incAlpha 0.005] [-json FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	evolving "repro"
)

// record is one measurement row of the BENCH json.
type record struct {
	Workload      string  `json:"workload"`
	Graph         string  `json:"graph"`
	Engine        string  `json:"engine"`
	Nodes         int     `json:"nodes"`
	Stamps        int     `json:"stamps"`
	StaticEdges   int     `json:"staticEdges"`
	UnfoldedEdges int     `json:"unfoldedEdges"`
	Reached       int     `json:"reached"`
	DeltaEvents   int     `json:"deltaEvents,omitempty"` // compact suite: events per epoch
	NS            int64   `json:"ns"`
	SpeedupVsMaps float64 `json:"speedupVsMaps,omitempty"` // speedup vs the row's oracle engine
}

func main() {
	var (
		nodes    = flag.Int("nodes", 10_000, "node-id space (paper: 1e5 at ~1000 edges/node; default shrunk to stay supercritical at laptop edge counts)")
		stamps   = flag.Int("stamps", 10, "time stamps (paper: 10)")
		edgeList = flag.String("edges", "500000,1000000,2000000,3000000,4000000",
			"comma-separated |E~| sweep (paper: 1e8..5e8)")
		seed          = flag.Int64("seed", 2016, "generator seed")
		reps          = flag.Int("reps", 3, "timing repetitions per size (min is reported)")
		parallel      = flag.Bool("parallel", false, "time the parallel BFS instead (Figure 5 mode)")
		workers       = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		compare       = flag.Bool("compare", false, "race the CSR/bitset engine against the adjacency-map oracle")
		suites        = flag.String("suites", "bfs,components,influence,closeness", "comma-separated -compare suites: bfs, components, influence, closeness, compact, csr, inc, recover")
		workloads     = flag.String("workloads", "random,citation", "comma-separated workloads for the bfs suite: random, citation, gnp, pref")
		suiteNodes    = flag.Int("suiteNodes", 500, "node-id space of the analytics-suite workload ladder")
		suiteEdges    = flag.String("suiteEdges", "5000,10000,20000,40000", "comma-separated |E~| ladder for the analytics suites")
		compactNodes  = flag.Int("compactNodes", 100_000, "node-id space of the compact/csr suites' base graph")
		compactEdges  = flag.Int("compactEdges", 1_000_000, "static edges of the compact/csr suites' base graph")
		compactDeltas = flag.String("compactDeltas", "10,1000,100000", "comma-separated delta sizes (events per epoch) for the compact and inc suites")
		incAlpha      = flag.Float64("incAlpha", 0.005, "inc suite: Katz attenuation factor (must converge on the base graph)")
		jsonPath      = flag.String("json", "", "write measurements to FILE as a JSON array")
		failBelow     = flag.Float64("failBelow", 0, "with -compare: exit 1 if a gated engine's speedup vs its oracle at the largest graph of any workload falls below this (0 disables) — the CI regression gate")
	)
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "egbench: -reps must be at least 1, got %d\n", *reps)
		os.Exit(2)
	}

	var records []record
	if *compare {
		for _, s := range strings.Split(*suites, ",") {
			switch s = strings.TrimSpace(s); s {
			case "bfs":
				records = append(records, runCompare(*workloads, *nodes, *stamps, *edgeList, *seed, *reps, *workers)...)
			case "components", "influence", "closeness":
				records = append(records, runAnalyticsSuite(s, *suiteNodes, *stamps, *suiteEdges, *seed, *reps, *workers)...)
			case "compact":
				records = append(records, runCompactSuite(*compactNodes, *stamps, *compactEdges, *compactDeltas, *seed, *reps, *workers)...)
			case "csr":
				records = append(records, runCSRSuite(*compactNodes, *stamps, *compactEdges, *seed, *reps, *workers)...)
			case "inc":
				records = append(records, runIncSuite(*compactNodes, *stamps, *compactEdges, *compactDeltas, *incAlpha, *seed, *reps, *workers)...)
			case "recover":
				records = append(records, runRecoverSuite(*compactNodes, *stamps, *compactEdges, *compactDeltas, *seed, *reps)...)
			default:
				fmt.Fprintf(os.Stderr, "egbench: unknown suite %q (bfs, components, influence, closeness, compact, csr, inc, recover)\n", s)
				os.Exit(2)
			}
		}
	} else {
		var err error
		records, err = runFigure5(*nodes, *stamps, *edgeList, *seed, *reps, *parallel, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "egbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d measurements to %s\n", len(records), *jsonPath)
	}
	if *compare && *failBelow > 0 {
		if failures := checkRegression(records, *failBelow); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "egbench: REGRESSION: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("regression gate: every gated engine ≥ %.2fx vs its oracle at the largest graph of every workload\n", *failBelow)
	}
}

// gatedEngines names the engines -failBelow gates, each against the
// oracle its SpeedupVsMaps field was computed from: csr vs the
// adjacency-map oracle, patch vs the full fold rebuild, csr-par vs the
// sequential CSR build.
var gatedEngines = map[string]string{
	"csr":     "maps oracle",
	"patch":   "fold oracle",
	"csr-par": "sequential build",
	"inc":     "full recompute",
	"ckpt":    "full replay",
}

// checkRegression enforces the CI perf gate: at the largest graph of
// every compared workload each gated engine must beat its oracle by at
// least threshold. Only the largest size counts — small graphs are
// noise-dominated on shared runners. (Cross-engine result mismatches
// already abort before any record is emitted.)
func checkRegression(records []record, threshold float64) []string {
	largest := make(map[string]record)
	for _, r := range records {
		if _, gated := gatedEngines[r.Engine]; !gated {
			continue
		}
		if best, ok := largest[r.Workload]; !ok || r.StaticEdges > best.StaticEdges {
			largest[r.Workload] = r
		}
	}
	var failures []string
	for _, r := range largest {
		if r.SpeedupVsMaps < threshold {
			failures = append(failures, fmt.Sprintf(
				"%s (%s, |E~|=%d): %s speedup %.2fx < %.2fx vs %s",
				r.Workload, r.Graph, r.StaticEdges, r.Engine, r.SpeedupVsMaps,
				threshold, gatedEngines[r.Engine]))
		}
	}
	sort.Strings(failures)
	return failures
}

// runFigure5 is the paper's scaling experiment over the random workload.
func runFigure5(nodes, stamps int, edgeList string, seed int64, reps int, parallel bool, workers int) ([]record, error) {
	counts, err := parseCounts(edgeList)
	if err != nil {
		return nil, err
	}

	engine := "csr"
	if parallel {
		engine = "csr-parallel"
	}
	fmt.Printf("# Figure 5 harness: %d nodes, %d stamps, seed %d, %d reps (min reported), engine %s\n",
		nodes, stamps, seed, reps, engine)
	if parallel {
		fmt.Printf("# parallel BFS, workers=%d\n", workers)
	}
	fmt.Printf("%14s %14s %14s %12s %14s\n", "|E~| requested", "|E~| built", "|E| unfolded", "time", "ns/|E~|")

	series := evolving.RandomSeries(nodes, stamps, counts, true, seed)
	var records []record
	xs := make([]float64, 0, len(series))
	ys := make([]float64, 0, len(series))
	for i, g := range series {
		root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
		var opts evolving.Options
		best, reached, err := timeBFS(g, root, opts, parallel, workers, reps)
		if err != nil {
			return nil, fmt.Errorf("BFS: %v", err)
		}
		built := g.StaticEdgeCount()
		unfolded := g.EdgeCount(evolving.CausalAllPairs)
		fmt.Printf("%14d %14d %14d %12s %14.2f   # reached %d\n",
			counts[i], built, unfolded, best.Round(time.Microsecond),
			float64(best.Nanoseconds())/float64(built), reached)
		xs = append(xs, float64(built))
		ys = append(ys, float64(best.Nanoseconds()))
		records = append(records, record{
			Workload: "random", Graph: fmt.Sprintf("random-%d", counts[i]), Engine: engine,
			Nodes: g.NumNodes(), Stamps: g.NumStamps(), StaticEdges: built,
			UnfoldedEdges: unfolded, Reached: reached, NS: best.Nanoseconds(),
		})
	}

	slope, intercept, r2 := leastSquares(xs, ys)
	fmt.Println()
	fmt.Printf("least-squares fit: time ≈ %.3f ns/edge · |E~| + %.2f ms   (R² = %.4f)\n",
		slope, intercept/1e6, r2)
	if r2 > 0.95 {
		fmt.Println("VERDICT: linear scaling in |E~| (the shape of the paper's Figure 5) HOLDS")
	} else {
		fmt.Println("VERDICT: linear fit is poor — investigate (R² ≤ 0.95)")
	}
	return records, nil
}

// namedGraph is one graph of a comparison workload.
type namedGraph struct {
	name string
	g    *evolving.Graph
}

// runCompare races adjacency-map, CSR and parallel-CSR engines on each
// workload graph.
func runCompare(workloads string, nodes, stamps int, edgeList string, seed int64, reps, workers int) []record {
	counts, err := parseCounts(edgeList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("# engine comparison: %d reps (min reported), workers=%d (0 = GOMAXPROCS)\n", reps, workers)
	fmt.Printf("%-24s %-14s %14s %14s %12s %10s\n", "graph", "engine", "|E~|", "reached", "time", "speedup")

	var records []record
	for _, w := range strings.Split(workloads, ",") {
		w = strings.TrimSpace(w)
		graphs, err := buildWorkload(w, nodes, stamps, counts, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egbench: %v\n", err)
			os.Exit(2)
		}
		for _, ng := range graphs {
			g := ng.g
			var root evolving.TemporalNode
			found := false
			for t := 0; t < g.NumStamps() && !found; t++ {
				if v := g.ActiveNodes(t).NextSet(0); v >= 0 {
					root = evolving.TemporalNode{Node: int32(v), Stamp: int32(t)}
					found = true
				}
			}
			if !found {
				continue
			}
			built := g.StaticEdgeCount()
			unfolded := g.EdgeCount(evolving.CausalAllPairs)

			mapsBest, reached, err := timeBFS(g, root, evolving.Options{UseAdjacencyMaps: true}, false, 0, reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "egbench: %s: %v\n", ng.name, err)
				os.Exit(1)
			}
			csrBest, csrReached, err := timeBFS(g, root, evolving.Options{}, false, 0, reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "egbench: %s: csr: %v\n", ng.name, err)
				os.Exit(1)
			}
			parBest, parReached, err := timeBFS(g, root, evolving.Options{}, true, workers, reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "egbench: %s: csr-parallel: %v\n", ng.name, err)
				os.Exit(1)
			}
			// The engines must agree before their times mean anything.
			if csrReached != reached || parReached != reached {
				fmt.Fprintf(os.Stderr, "egbench: %s: engines disagree: maps reached %d, csr %d, csr-parallel %d\n",
					ng.name, reached, csrReached, parReached)
				os.Exit(1)
			}

			row := func(engine string, d time.Duration) {
				speedup := float64(mapsBest.Nanoseconds()) / float64(d.Nanoseconds())
				fmt.Printf("%-24s %-14s %14d %14d %12s %9.2fx\n",
					ng.name, engine, built, reached, d.Round(time.Microsecond), speedup)
				records = append(records, record{
					Workload: w, Graph: ng.name, Engine: engine,
					Nodes: g.NumNodes(), Stamps: g.NumStamps(), StaticEdges: built,
					UnfoldedEdges: unfolded, Reached: reached, NS: d.Nanoseconds(),
					SpeedupVsMaps: speedup,
				})
			}
			row("maps", mapsBest)
			row("csr", csrBest)
			row("csr-parallel", parBest)
		}
	}
	return records
}

// runAnalyticsSuite races one CSR-backed analytics computation against
// its adjacency-map oracle across the random-workload ladder. Engine
// outputs are checked for equality before timing is reported.
//
// The comparison is end-to-end: the maps rows time the sequential
// pre-CSR implementation, the csr rows the current default (CSR
// traversal plus the -workers fan-out where the entry point has one).
// On a single core the speedup isolates the engine; on multiple cores
// it additionally includes the fan-out.
func runAnalyticsSuite(name string, nodes, stamps int, edgeList string, seed int64, reps, workers int) []record {
	counts, err := parseCounts(edgeList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: %v\n", err)
		os.Exit(2)
	}
	// run evaluates the suite computation on one engine and returns a
	// result for the equality check plus a headline count for the table.
	var run func(g *evolving.Graph, oracle bool) (result interface{}, count int)
	switch name {
	case "components":
		run = func(g *evolving.Graph, oracle bool) (interface{}, int) {
			sizes := evolving.ComponentSizeDistribution(g,
				evolving.ComponentOptions{UseAdjacencyMaps: oracle, Workers: workers})
			return sizes, len(sizes)
		}
	case "influence":
		run = func(g *evolving.Graph, oracle bool) (interface{}, int) {
			seeds, err := evolving.GreedyInfluence(g, 5,
				evolving.InfluenceOptions{UseAdjacencyMaps: oracle, Workers: workers})
			if err != nil {
				fmt.Fprintf(os.Stderr, "egbench: influence: %v\n", err)
				os.Exit(1)
			}
			covered := 0
			if len(seeds) > 0 {
				covered = seeds[len(seeds)-1].Covered
			}
			return seeds, covered
		}
	case "closeness":
		run = func(g *evolving.Graph, oracle bool) (interface{}, int) {
			st := evolving.GlobalEfficiencyOpts(g,
				evolving.MetricOptions{UseAdjacencyMaps: oracle, Workers: workers})
			return st, st.Diameter
		}
	}

	fmt.Printf("\n# %s suite: %d nodes, %d stamps, %d reps (min reported), csr workers=%d (0 = GOMAXPROCS; maps rows are the sequential oracle)\n",
		name, nodes, stamps, reps, workers)
	fmt.Printf("%-24s %-14s %14s %14s %12s %10s\n", "graph", "engine", "|E~|", "result", "time", "speedup")

	var records []record
	series := evolving.RandomSeries(nodes, stamps, counts, true, seed)
	for i, g := range series {
		graph := fmt.Sprintf("random-%d", counts[i])
		built := g.StaticEdgeCount()
		unfolded := g.EdgeCount(evolving.CausalAllPairs)

		// The engines must agree before their times mean anything.
		csrResult, count := run(g, false)
		mapsResult, _ := run(g, true)
		if !reflect.DeepEqual(csrResult, mapsResult) {
			fmt.Fprintf(os.Stderr, "egbench: %s %s: engines disagree:\ncsr  %v\nmaps %v\n",
				name, graph, csrResult, mapsResult)
			os.Exit(1)
		}

		mapsBest := timeRuns(reps, func() { run(g, true) })
		csrBest := timeRuns(reps, func() { run(g, false) })
		row := func(engine string, d time.Duration) {
			speedup := float64(mapsBest.Nanoseconds()) / float64(d.Nanoseconds())
			fmt.Printf("%-24s %-14s %14d %14d %12s %9.2fx\n",
				graph, engine, built, count, d.Round(time.Microsecond), speedup)
			records = append(records, record{
				Workload: name, Graph: graph, Engine: engine,
				Nodes: g.NumNodes(), Stamps: g.NumStamps(), StaticEdges: built,
				UnfoldedEdges: unfolded, Reached: count, NS: d.Nanoseconds(),
				SpeedupVsMaps: speedup,
			})
		}
		row("maps", mapsBest)
		row("csr", csrBest)
	}
	return records
}

// runCompactSuite races one epoch of the ingest compactor per delta
// size: the incremental PatchEvents fold plus a parallel arena-reused
// CSR build ("patch") against the seed behaviour — FoldEvents full
// rebuild plus a sequential CSR build ("fold"). Both paths must
// produce bit-identical graphs (flat views compared byte for byte)
// before any time is reported; the patch rows carry speedup vs fold
// and are gated by -failBelow.
func runCompactSuite(nodes, stamps, edges int, deltaList string, seed int64, reps, workers int) []record {
	deltas, err := parseCounts(deltaList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: -compactDeltas: %v\n", err)
		os.Exit(2)
	}
	base := evolving.Random(evolving.RandomConfig{
		Nodes: nodes, Stamps: stamps, Edges: edges, Directed: true, Seed: seed,
	})
	built := base.StaticEdgeCount()
	unfolded := base.EdgeCount(evolving.CausalAllPairs)
	fmt.Printf("\n# compact suite: epoch latency vs delta size on a %d-node / %d-arc / %d-stamp base, %d reps (min reported), csr workers=%d (0 = GOMAXPROCS)\n",
		base.NumNodes(), built, base.NumStamps(), reps, workers)
	fmt.Printf("%-24s %-14s %14s %14s %12s %10s\n", "graph", "engine", "|E~|", "delta", "time", "speedup")

	var records []record
	for _, k := range deltas {
		events := genCompactEvents(base, k, seed)
		// Bit-identical-graph assertion: the two fold paths and the two
		// build paths must agree exactly before their times mean anything.
		foldG := evolving.FoldEvents(base, events)
		patchG := evolving.PatchEvents(base, events)
		if err := graphsBitIdentical(foldG, patchG); err != nil {
			fmt.Fprintf(os.Stderr, "egbench: compact delta-%d: patch diverged from fold oracle: %v\n", k, err)
			os.Exit(1)
		}

		foldBest := timeRuns(reps, func() {
			g := evolving.FoldEvents(base, events)
			evolving.BuildFlatCSR(g, evolving.CSRBuildOptions{Workers: 1})
		})
		var arena *evolving.CSRArena
		patchBest := timeRuns(reps, func() {
			g := evolving.PatchEvents(base, events)
			c := evolving.BuildFlatCSR(g, evolving.CSRBuildOptions{Workers: workers, Arena: arena})
			arena = c.Recycle() // steady state: every epoch rebuilds into the retiring buffers
		})

		graph := fmt.Sprintf("delta-%d", k)
		row := func(engine string, d time.Duration) {
			speedup := float64(foldBest.Nanoseconds()) / float64(d.Nanoseconds())
			fmt.Printf("%-24s %-14s %14d %14d %12s %9.2fx\n",
				graph, engine, built, len(events), d.Round(time.Microsecond), speedup)
			records = append(records, record{
				Workload: fmt.Sprintf("compact-%d", k), Graph: graph, Engine: engine,
				Nodes: base.NumNodes(), Stamps: base.NumStamps(), StaticEdges: built,
				UnfoldedEdges: unfolded, DeltaEvents: len(events), NS: d.Nanoseconds(),
				SpeedupVsMaps: speedup,
			})
		}
		row("fold", foldBest)
		row("patch", patchBest)
	}
	return records
}

// runCSRSuite races the flat-CSR build sequential vs parallel (with
// arena reuse) on the compact suite's base graph, asserting the views
// come out bit-identical.
func runCSRSuite(nodes, stamps, edges int, seed int64, reps, workers int) []record {
	base := evolving.Random(evolving.RandomConfig{
		Nodes: nodes, Stamps: stamps, Edges: edges, Directed: true, Seed: seed,
	})
	built := base.StaticEdgeCount()
	unfolded := base.EdgeCount(evolving.CausalAllPairs)
	fmt.Printf("\n# csr suite: flat-view build on a %d-node / %d-arc / %d-stamp graph, %d reps (min reported), workers=%d (0 = GOMAXPROCS)\n",
		base.NumNodes(), built, base.NumStamps(), reps, workers)
	fmt.Printf("%-24s %-14s %14s %14s %12s %10s\n", "graph", "engine", "|E~|", "ids", "time", "speedup")

	seq := evolving.BuildFlatCSR(base, evolving.CSRBuildOptions{Workers: 1})
	par := evolving.BuildFlatCSR(base, evolving.CSRBuildOptions{Workers: workers})
	if !reflect.DeepEqual(seq, par) {
		fmt.Fprintln(os.Stderr, "egbench: csr: parallel build differs from sequential")
		os.Exit(1)
	}
	seqBest := timeRuns(reps, func() {
		evolving.BuildFlatCSR(base, evolving.CSRBuildOptions{Workers: 1})
	})
	var arena *evolving.CSRArena
	parBest := timeRuns(reps, func() {
		c := evolving.BuildFlatCSR(base, evolving.CSRBuildOptions{Workers: workers, Arena: arena})
		arena = c.Recycle()
	})

	graph := fmt.Sprintf("random-%d", built)
	var records []record
	row := func(engine string, d time.Duration) {
		speedup := float64(seqBest.Nanoseconds()) / float64(d.Nanoseconds())
		fmt.Printf("%-24s %-14s %14d %14d %12s %9.2fx\n",
			graph, engine, built, seq.Size(), d.Round(time.Microsecond), speedup)
		records = append(records, record{
			Workload: "csr", Graph: graph, Engine: engine,
			Nodes: base.NumNodes(), Stamps: base.NumStamps(), StaticEdges: built,
			UnfoldedEdges: unfolded, Reached: seq.Size(), NS: d.Nanoseconds(),
			SpeedupVsMaps: speedup,
		})
	}
	row("csr-seq", seqBest)
	row("csr-par", parBest)
	return records
}

// runIncSuite races the incrementally maintained analytics
// (internal/inc) against the verbatim full recomputations they
// replace. Per delta size, chained epochs of ingest-shaped events are
// pregenerated and patched; the "inc" engine primes a maintainer once
// (untimed) and times rolling it through every epoch, the "full"
// engine times what serving the same analytics without maintenance
// costs per epoch — the production weak-component partition plus both
// causal modes' temporal Katz. Maintained results are asserted
// oracle-equivalent after every epoch (weak partition exactly, Katz
// within 1e-12) before any time is reported; the inc rows carry
// speedup vs full and are gated by -failBelow.
func runIncSuite(nodes, stamps, edges int, deltaList string, alpha float64, seed int64, reps, workers int) []record {
	deltas, err := parseCounts(deltaList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: -compactDeltas: %v\n", err)
		os.Exit(2)
	}
	base := evolving.Random(evolving.RandomConfig{
		Nodes: nodes, Stamps: stamps, Edges: edges, Directed: true, Seed: seed,
	})
	built := base.StaticEdgeCount()
	unfolded := base.EdgeCount(evolving.CausalAllPairs)
	if _, err := evolving.TemporalKatz(base, evolving.KatzOptions{Alpha: alpha}); err != nil {
		fmt.Fprintf(os.Stderr, "egbench: inc: katz diverges on the base graph at alpha=%g — lower -incAlpha\n", alpha)
		os.Exit(2)
	}
	const epochs = 3
	modes := []evolving.CausalMode{evolving.CausalAllPairs, evolving.CausalConsecutive}
	fmt.Printf("\n# inc suite: maintained analytics vs full recompute, %d chained epochs per delta size, on a %d-node / %d-arc / %d-stamp base, alpha=%g, %d reps (min reported)\n",
		epochs, base.NumNodes(), built, base.NumStamps(), alpha, reps)
	fmt.Printf("%-24s %-14s %14s %14s %12s %10s\n", "graph", "engine", "|E~|", "delta", "time", "speedup")

	var records []record
	for _, k := range deltas {
		graphs := make([]*evolving.Graph, epochs+1)
		graphs[0] = base
		ds := make([][]evolving.ArcDelta, epochs)
		for e := 0; e < epochs; e++ {
			events := genCompactEvents(graphs[e], k, seed+int64(e)*101)
			ds[e] = evolving.EventDeltas(events)
			graphs[e+1] = evolving.PatchGraph(graphs[e], ds[e])
		}

		// Per-epoch oracle equivalence before any time means anything
		// (this also warms every graph's lazily built CSR view, so the
		// timed loops charge neither engine for construction).
		m := evolving.NewMaintainer(evolving.MaintainerConfig{KatzAlpha: alpha})
		m.Prime(graphs[0])
		for e := 0; e < epochs; e++ {
			res := m.Apply(graphs[e], graphs[e+1], ds[e])
			g := graphs[e+1]
			for _, mode := range modes {
				if err := res.MatchesWeak(g, evolving.WeakComponentsOpts(g, evolving.ComponentOptions{Mode: mode, Workers: workers})); err != nil {
					fmt.Fprintf(os.Stderr, "egbench: inc delta-%d epoch %d: weak diverged from oracle: %v\n", k, e, err)
					os.Exit(1)
				}
				want, kerr := evolving.TemporalKatz(g, evolving.KatzOptions{Alpha: alpha, Mode: mode, Tol: evolving.MaintainerSeriesTol})
				got := res.KatzScores(mode)
				if kerr != nil {
					if got != nil {
						fmt.Fprintf(os.Stderr, "egbench: inc delta-%d epoch %d: oracle diverged but maintainer kept scores\n", k, e)
						os.Exit(1)
					}
					continue
				}
				if got == nil {
					fmt.Fprintf(os.Stderr, "egbench: inc delta-%d epoch %d: maintained katz missing (oracle converged)\n", k, e)
					os.Exit(1)
				}
				for i := range want {
					tol := 1e-12 * math.Max(1, math.Max(math.Abs(got[i]), math.Abs(want[i])))
					if math.Abs(got[i]-want[i]) > tol {
						fmt.Fprintf(os.Stderr, "egbench: inc delta-%d epoch %d id %d: maintained %.17g vs oracle %.17g\n", k, e, i, got[i], want[i])
						os.Exit(1)
					}
				}
			}
		}

		// Time the maintained path: prime untimed (it is paid once per
		// process, not per epoch), then roll through every epoch.
		incBest := time.Duration(math.MaxInt64)
		for r := -1; r < reps; r++ {
			mm := evolving.NewMaintainer(evolving.MaintainerConfig{KatzAlpha: alpha})
			mm.Prime(graphs[0])
			// Collect the previous rep's maintainer state and Prime's
			// garbage outside the timed window (see timeRuns).
			runtime.GC()
			start := time.Now()
			for e := 0; e < epochs; e++ {
				mm.Apply(graphs[e], graphs[e+1], ds[e])
			}
			if el := time.Since(start); r >= 0 && el < incBest {
				incBest = el
			}
		}
		// Time the full path: what the query service would recompute per
		// epoch without maintenance (production tolerances).
		fullBest := timeRuns(reps, func() {
			for e := 0; e < epochs; e++ {
				g := graphs[e+1]
				evolving.WeakComponentsOpts(g, evolving.ComponentOptions{Workers: workers})
				for _, mode := range modes {
					if _, err := evolving.TemporalKatz(g, evolving.KatzOptions{Alpha: alpha, Mode: mode}); err != nil {
						fmt.Fprintf(os.Stderr, "egbench: inc delta-%d: full katz: %v\n", k, err)
						os.Exit(1)
					}
				}
			}
		})

		st := m.Stats()
		fmt.Printf("# delta-%d maintainer: weak %d inc / %d full, katz %d inc / %d full\n",
			k, st.WeakIncremental, st.WeakFull, st.KatzIncremental, st.KatzFull)
		graph := fmt.Sprintf("delta-%d", k)
		row := func(engine string, d time.Duration) {
			speedup := float64(fullBest.Nanoseconds()) / float64(d.Nanoseconds())
			fmt.Printf("%-24s %-14s %14d %14d %12s %9.2fx\n",
				graph, engine, built, k, d.Round(time.Microsecond), speedup)
			records = append(records, record{
				Workload: fmt.Sprintf("inc-%d", k), Graph: graph, Engine: engine,
				Nodes: base.NumNodes(), Stamps: base.NumStamps(), StaticEdges: built,
				UnfoldedEdges: unfolded, DeltaEvents: k, NS: d.Nanoseconds(),
				SpeedupVsMaps: speedup,
			})
		}
		row("full", fullBest)
		row("inc", incBest)
	}
	return records
}

// genCompactEvents builds a deterministic ~k-event epoch delta over
// base: mostly arc insertions at existing labels, ~25% removals of
// arcs base actually holds, and roughly one fresh stamp per 97 events
// — the append-mostly shape of live ingestion.
func genCompactEvents(base *evolving.Graph, k int, seed int64) []evolving.IngestEvent {
	rng := rand.New(rand.NewSource(seed + int64(k)*7919))
	labels := base.TimeLabels()
	n := base.NumNodes()
	next := labels[len(labels)-1] + 1
	events := make([]evolving.IngestEvent, 0, k)
	for len(events) < k {
		switch {
		case len(events)%97 == 96: // open a fresh stamp and seed it
			u := int32(rng.Intn(n))
			events = append(events,
				evolving.IngestEvent{Op: evolving.IngestAddStamp, T: next},
				evolving.IngestEvent{Op: evolving.IngestAddArc, U: u, V: (u + 1) % int32(n), T: next})
			next++
		case rng.Intn(4) == 0: // remove an arc base actually holds
			removed := false
			for tries := 0; tries < 16 && !removed; tries++ {
				u := int32(rng.Intn(n))
				ti := rng.Intn(base.NumStamps())
				if nbrs := base.OutNeighbors(u, int32(ti)); len(nbrs) > 0 {
					events = append(events, evolving.IngestEvent{
						Op: evolving.IngestRemoveArc, U: u, V: nbrs[rng.Intn(len(nbrs))], T: labels[ti],
					})
					removed = true
				}
			}
		default: // plain insertion at an existing label
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				v = (v + 1) % int32(n)
			}
			events = append(events, evolving.IngestEvent{
				Op: evolving.IngestAddArc, U: u, V: v, T: labels[rng.Intn(len(labels))],
			})
		}
	}
	return events[:k]
}

// graphsBitIdentical compares two graphs the strong way: identical
// shape, labels, per-stamp weighted edge streams, and byte-identical
// flat CSR views.
func graphsBitIdentical(a, b *evolving.Graph) error {
	if a.NumNodes() != b.NumNodes() || a.NumStamps() != b.NumStamps() {
		return fmt.Errorf("shape (%d nodes, %d stamps) vs (%d nodes, %d stamps)",
			a.NumNodes(), a.NumStamps(), b.NumNodes(), b.NumStamps())
	}
	if !reflect.DeepEqual(a.TimeLabels(), b.TimeLabels()) {
		return fmt.Errorf("time labels %v vs %v", a.TimeLabels(), b.TimeLabels())
	}
	type edge struct {
		u, v int32
		w    float64
	}
	for t := 0; t < a.NumStamps(); t++ {
		var ae, be []edge
		a.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			ae = append(ae, edge{u, v, w})
			return true
		})
		b.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			be = append(be, edge{u, v, w})
			return true
		})
		if !reflect.DeepEqual(ae, be) {
			return fmt.Errorf("stamp %d: %d vs %d edges or differing streams", t, len(ae), len(be))
		}
	}
	ac := evolving.BuildFlatCSR(a, evolving.CSRBuildOptions{Workers: 1})
	bc := evolving.BuildFlatCSR(b, evolving.CSRBuildOptions{Workers: 1})
	if !reflect.DeepEqual(ac, bc) {
		return fmt.Errorf("flat CSR views differ")
	}
	return nil
}

// timeRuns reports the minimum wall-clock time of reps invocations,
// after one untimed warm-up (the lazily built CSR view and page faults
// charge neither engine).
// timeRuns reports the best of reps timed runs of fn after one untimed
// warmup. Each timed window starts on a clean heap: without the
// explicit collection, garbage from the previous run is collected
// *during* the next timed window, and on few-core machines the
// assist/STW cost lands in whichever run the pacer picks — the
// dominant noise source for sub-second measurements.
func timeRuns(reps int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := -1; r < reps; r++ {
		runtime.GC()
		start := time.Now()
		fn()
		if el := time.Since(start); r >= 0 && el < best {
			best = el
		}
	}
	return best
}

// buildWorkload materialises the named generator workload.
func buildWorkload(name string, nodes, stamps int, counts []int, seed int64) ([]namedGraph, error) {
	switch name {
	case "random":
		series := evolving.RandomSeries(nodes, stamps, counts, true, seed)
		out := make([]namedGraph, len(series))
		for i, g := range series {
			out[i] = namedGraph{fmt.Sprintf("random-%d", counts[i]), g}
		}
		return out, nil
	case "citation":
		var out []namedGraph
		for _, authors := range []int{2000, 5000} {
			cfg := evolving.DefaultCitationConfig()
			cfg.Authors = authors
			cfg.Stamps = stamps
			cfg.Seed = seed
			g, _ := evolving.SyntheticCitation(cfg)
			out = append(out, namedGraph{fmt.Sprintf("citation-%d", authors), g})
		}
		return out, nil
	case "gnp":
		var out []namedGraph
		for _, p := range []float64{0.001, 0.002} {
			g := evolving.GNP(nodes, stamps, p, true, seed)
			out = append(out, namedGraph{fmt.Sprintf("gnp-%g", p), g})
		}
		return out, nil
	case "pref":
		var out []namedGraph
		for _, m := range []int{4, 8} {
			g := evolving.PreferentialAttachment(nodes, stamps, m, seed)
			out = append(out, namedGraph{fmt.Sprintf("pref-m%d", m), g})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (random, citation, gnp, pref)", name)
	}
}

// timeBFS reports the minimum wall-clock time of reps searches. One
// untimed warm-up run precedes the timed ones so one-time setup (the
// lazily built CSR view, page faults on fresh arrays) charges neither
// engine.
func timeBFS(g *evolving.Graph, root evolving.TemporalNode, opts evolving.Options, parallel bool, workers, reps int) (time.Duration, int, error) {
	best := time.Duration(math.MaxInt64)
	reached := 0
	for r := -1; r < reps; r++ {
		start := time.Now()
		var res *evolving.Result
		var err error
		if parallel {
			res, err = evolving.ParallelBFS(g, root, evolving.ParallelOptions{Options: opts, Workers: workers})
		} else {
			res, err = evolving.BFS(g, root, opts)
		}
		if err != nil {
			return 0, 0, err
		}
		if el := time.Since(start); r >= 0 && el < best {
			best = el
		}
		reached = res.NumReached()
	}
	return best, reached, nil
}

func writeJSON(path string, records []record) error {
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func parseCounts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad edge count %q", p)
		}
		counts = append(counts, n)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			return nil, fmt.Errorf("edge counts must be non-decreasing")
		}
	}
	return counts, nil
}

// leastSquares fits y = a·x + b and returns (a, b, R²).
func leastSquares(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	mean := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		ssTot += (ys[i] - mean) * (ys[i] - mean)
		pred := a*xs[i] + b
		ssRes += (ys[i] - pred) * (ys[i] - pred)
	}
	if ssTot == 0 {
		return a, b, 1
	}
	return a, b, 1 - ssRes/ssTot
}

// runRecoverSuite measures warm restart: booting to a query-ready
// graph through the mmap'd checkpoint plus a WAL-tail fold (engine
// "ckpt") vs the full replay boot the seed performed (engine
// "replay"). The replay engine pays exactly what cmd/egserve's
// fallback path pays — construct the base graph, then fold the whole
// event history — because that is what RecoverConfig.Base's laziness
// lets a checkpoint boot skip. The checkpoint covers the base plus a
// fixed bulk history; each -compactDeltas entry is the WAL tail the
// checkpoint has not covered yet. Neither timed boot builds the flat
// CSR view — the server is query-ready before it (EnsureCSR is lazy),
// and the checkpoint ships its CSR sections zero-copy anyway. Both
// boots must produce bit-identical graphs (flat views compared byte
// for byte) before any time is reported; the ckpt rows carry speedup
// vs replay and are gated by -failBelow (CI: ≥10x on the
// 100k-node/1M-arc base).
func runRecoverSuite(nodes, stamps, edges int, deltaList string, seed int64, reps int) []record {
	deltas, err := parseCounts(deltaList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: -compactDeltas: %v\n", err)
		os.Exit(2)
	}
	cfg := evolving.RandomConfig{
		Nodes: nodes, Stamps: stamps, Edges: edges, Directed: true, Seed: seed,
	}
	base := evolving.Random(cfg)
	built := base.StaticEdgeCount()
	unfolded := base.EdgeCount(evolving.CausalAllPairs)

	// The durable history: a fixed bulk delta the checkpoint covers,
	// then per-row tails it has not. The bulk stays at existing labels
	// (arc churn, no fresh stamps): per-stamp ptr rows cost O(N) each,
	// so a stamp-opening bulk would balloon the checkpoint instead of
	// representing the steady state the compactor checkpoints from.
	// The generator is deterministic, so "the WAL" is reproducible
	// without a file on disk.
	const bulk = 10_000
	bulkEvents := genRecoverBulk(base, bulk, seed+1)
	ckptG := evolving.FoldEvents(base, bulkEvents)

	dir, err := os.MkdirTemp("", "egbench-recover-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.ckpt")
	ckptBytes, err := evolving.WriteCheckpoint(path, ckptG, evolving.CheckpointMeta{
		WALSeq: 1, Labels: ckptG.TimeLabels(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: recover: write checkpoint: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\n# recover suite: boot-to-query-ready vs WAL-tail size on a %d-node / %d-arc / %d-stamp base (+%d-event bulk history; checkpoint %d bytes), %d reps (min reported)\n",
		base.NumNodes(), built, base.NumStamps(), bulk, ckptBytes, reps)
	fmt.Printf("%-24s %-14s %14s %14s %12s %10s\n", "graph", "engine", "|E~|", "tail", "time", "speedup")

	var records []record
	for _, k := range deltas {
		tail := genCompactEvents(ckptG, k, seed+2)
		all := append(append([]evolving.IngestEvent(nil), bulkEvents...), tail...)

		// Bit-identical-boot assertion: the checkpoint path must agree
		// with the full replay exactly before its time means anything.
		replayG := evolving.FoldEvents(base, all)
		ck, err := evolving.OpenCheckpoint(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egbench: recover tail-%d: open checkpoint: %v\n", k, err)
			os.Exit(1)
		}
		warmG := evolving.PatchEvents(ck.Graph, tail)
		if err := graphsBitIdentical(replayG, warmG); err != nil {
			fmt.Fprintf(os.Stderr, "egbench: recover tail-%d: checkpoint boot diverged from full replay: %v\n", k, err)
			os.Exit(1)
		}
		ck.Close()

		replayBest := timeRuns(reps, func() {
			evolving.FoldEvents(evolving.Random(cfg), all)
		})
		ckptBest := timeRuns(reps, func() {
			ck, err := evolving.OpenCheckpoint(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "egbench: recover tail-%d: open checkpoint: %v\n", k, err)
				os.Exit(1)
			}
			evolving.PatchEvents(ck.Graph, tail)
			ck.Close()
		})

		graph := fmt.Sprintf("tail-%d", k)
		row := func(engine string, d time.Duration) {
			speedup := float64(replayBest.Nanoseconds()) / float64(d.Nanoseconds())
			fmt.Printf("%-24s %-14s %14d %14d %12s %9.2fx\n",
				graph, engine, built, len(tail), d.Round(time.Microsecond), speedup)
			records = append(records, record{
				Workload: fmt.Sprintf("recover-%d", k), Graph: graph, Engine: engine,
				Nodes: base.NumNodes(), Stamps: base.NumStamps(), StaticEdges: built,
				UnfoldedEdges: unfolded, DeltaEvents: len(tail), NS: d.Nanoseconds(),
				SpeedupVsMaps: speedup,
			})
		}
		row("replay", replayBest)
		row("ckpt", ckptBest)
	}
	return records
}

// genRecoverBulk builds a deterministic k-event arc-churn delta at
// base's existing labels — ~25% removals of arcs base actually holds,
// the rest insertions — the steady-state history a checkpoint covers.
func genRecoverBulk(base *evolving.Graph, k int, seed int64) []evolving.IngestEvent {
	rng := rand.New(rand.NewSource(seed + int64(k)*104729))
	labels := base.TimeLabels()
	n := base.NumNodes()
	events := make([]evolving.IngestEvent, 0, k)
	for len(events) < k {
		if rng.Intn(4) == 0 {
			removed := false
			for tries := 0; tries < 16 && !removed; tries++ {
				u := int32(rng.Intn(n))
				ti := rng.Intn(base.NumStamps())
				if nbrs := base.OutNeighbors(u, int32(ti)); len(nbrs) > 0 {
					events = append(events, evolving.IngestEvent{
						Op: evolving.IngestRemoveArc, U: u, V: nbrs[rng.Intn(len(nbrs))], T: labels[ti],
					})
					removed = true
				}
			}
			continue
		}
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			v = (v + 1) % int32(n)
		}
		events = append(events, evolving.IngestEvent{
			Op: evolving.IngestAddArc, U: u, V: v, T: labels[rng.Intn(len(labels))],
		})
	}
	return events
}
