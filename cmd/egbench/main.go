// Command egbench regenerates the paper's Figure 5: wall-clock time of
// Algorithm 1 against the number of static edges |Ẽ| on random evolving
// graphs, plus a least-squares check of the linear shape (Theorem 2).
//
// The paper's run used 10⁵ active nodes, 10 stamps and |Ẽ| from ~1×10⁸
// to ~5×10⁸ on one core of a 1 TB Xeon box. Defaults here are laptop
// sized; raise -edges to approach the paper's scale if you have the RAM.
//
// Usage:
//
//	egbench [-nodes 100000] [-stamps 10] [-edges 500000,1000000,...]
//	        [-seed 2016] [-reps 3] [-parallel]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	evolving "repro"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 10_000, "node-id space (paper: 1e5 at ~1000 edges/node; default shrunk to stay supercritical at laptop edge counts)")
		stamps   = flag.Int("stamps", 10, "time stamps (paper: 10)")
		edgeList = flag.String("edges", "500000,1000000,2000000,3000000,4000000",
			"comma-separated |E~| sweep (paper: 1e8..5e8)")
		seed     = flag.Int64("seed", 2016, "generator seed")
		reps     = flag.Int("reps", 3, "timing repetitions per size (min is reported)")
		parallel = flag.Bool("parallel", false, "time the parallel BFS instead")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	counts, err := parseCounts(*edgeList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egbench: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("# Figure 5 harness: %d nodes, %d stamps, seed %d, %d reps (min reported)\n",
		*nodes, *stamps, *seed, *reps)
	if *parallel {
		fmt.Printf("# parallel BFS, workers=%d\n", *workers)
	}
	fmt.Printf("%14s %14s %14s %12s %14s\n", "|E~| requested", "|E~| built", "|E| unfolded", "time", "ns/|E~|")

	series := evolving.RandomSeries(*nodes, *stamps, counts, true, *seed)
	xs := make([]float64, 0, len(series))
	ys := make([]float64, 0, len(series))
	for i, g := range series {
		root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
		best := time.Duration(math.MaxInt64)
		var reached int
		for r := 0; r < *reps; r++ {
			start := time.Now()
			var res *evolving.Result
			var err error
			if *parallel {
				res, err = evolving.ParallelBFS(g, root, evolving.ParallelOptions{Workers: *workers})
			} else {
				res, err = evolving.BFS(g, root, evolving.Options{})
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "egbench: BFS: %v\n", err)
				os.Exit(1)
			}
			if el := time.Since(start); el < best {
				best = el
			}
			reached = res.NumReached()
		}
		built := g.StaticEdgeCount()
		unfolded := g.EdgeCount(evolving.CausalAllPairs)
		fmt.Printf("%14d %14d %14d %12s %14.2f   # reached %d\n",
			counts[i], built, unfolded, best.Round(time.Microsecond),
			float64(best.Nanoseconds())/float64(built), reached)
		xs = append(xs, float64(built))
		ys = append(ys, float64(best.Nanoseconds()))
	}

	slope, intercept, r2 := leastSquares(xs, ys)
	fmt.Println()
	fmt.Printf("least-squares fit: time ≈ %.3f ns/edge · |E~| + %.2f ms   (R² = %.4f)\n",
		slope, intercept/1e6, r2)
	if r2 > 0.95 {
		fmt.Println("VERDICT: linear scaling in |E~| (the shape of the paper's Figure 5) HOLDS")
	} else {
		fmt.Println("VERDICT: linear fit is poor — investigate (R² ≤ 0.95)")
	}
}

func parseCounts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad edge count %q", p)
		}
		counts = append(counts, n)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			return nil, fmt.Errorf("edge counts must be non-decreasing")
		}
	}
	return counts, nil
}

// leastSquares fits y = a·x + b and returns (a, b, R²).
func leastSquares(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	mean := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		ssTot += (ys[i] - mean) * (ys[i] - mean)
		pred := a*xs[i] + b
		ssRes += (ys[i] - pred) * (ys[i] - pred)
	}
	if ssTot == 0 {
		return a, b, 1
	}
	return a, b, 1 - ssRes/ssTot
}
