// Command egconvert converts evolving graphs between the three on-disk
// formats (text edge list, JSON document, compact binary) and can emit
// Graphviz DOT for visualisation.
//
// Usage:
//
//	egconvert -from text -to binary -i g.txt -o g.bin [-undirected]
//	egconvert -from binary -to dot -i g.bin | dot -Tsvg > g.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	evolving "repro"
)

func main() {
	var (
		from       = flag.String("from", "text", "input format: text | json | binary")
		to         = flag.String("to", "binary", "output format: text | json | binary | dot")
		in         = flag.String("i", "", "input file (default stdin)")
		out        = flag.String("o", "", "output file (default stdout)")
		undirected = flag.Bool("undirected", false, "text input: treat edges as undirected")
		inactive   = flag.Bool("inactive", false, "dot output: draw inactive temporal nodes too")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail("open: %v", err)
		}
		defer f.Close()
		r = f
	}
	var g *evolving.Graph
	var err error
	switch *from {
	case "text":
		g, err = evolving.ReadEdgeList(r, !*undirected)
	case "json":
		g, err = evolving.ReadJSON(r)
	case "binary":
		g, err = evolving.ReadBinary(r)
	default:
		fail("unknown input format %q", *from)
	}
	if err != nil {
		fail("read: %v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("create: %v", err)
		}
		defer f.Close()
		w = f
	}
	switch *to {
	case "text":
		err = evolving.WriteEdgeList(w, g)
	case "json":
		err = evolving.WriteJSON(w, g)
	case "binary":
		err = evolving.WriteBinary(w, g)
	case "dot":
		err = evolving.WriteDOT(w, g, evolving.DOTOptions{IncludeInactive: *inactive})
	default:
		fail("unknown output format %q", *to)
	}
	if err != nil {
		fail("write: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "egconvert: "+format+"\n", args...)
	os.Exit(1)
}
