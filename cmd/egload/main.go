// Command egload replays a mixed read/write workload against a live
// egserve instance and reports per-endpoint latency percentiles,
// throughput and the server's cache hit rate — the harness that
// demonstrates the result-cache/singleflight win on repeated analytics
// queries (DESIGN.md §10) and, with -writeRatio, exercises the ingest
// write path and its epoch snapshot swaps under concurrent reads
// (DESIGN.md §11).
//
// Usage:
//
//	egload [-url http://host:8080] [-duration 5s | -requests N]
//	       [-concurrency 8] [-distinct 4] [-seed 1]
//	       [-mix bfs:4,stats:2,weak:2,sizes:2,efficiency:2,katz:2,closeness:3,influence:1]
//	       [-writeRatio 0] [-writeBatch 16]
//	       [-nodes 500] [-stamps 8] [-edges 5000]
//	       [-visibility inline|poll|feed] [-pollInterval 50ms] [-wire host:9090]
//	       [-waitReady 0] [-json FILE] [-lintProm URL]
//
// -visibility selects how the harness learns that an acked write became
// readable: "inline" piggybacks on read responses, "poll" runs a
// dedicated /healthz poller (the deprecated X-Graph-Revision pattern),
// "feed" subscribes to the EGWP change-feed on -wire (self-serve opens
// its own wire listener). Running poll and feed over the same workload
// is the BENCH_8 experiment: pushed events resolve at epoch-publish
// time, polling pays up to a full -pollInterval on top.
//
// With -waitReady the harness first polls /readyz until the target
// answers 200 (restart-to-ready; the JSON report records it as
// restartToReadyNs) — launch it alongside a restarting egserve to
// measure boot-to-serving time, which is where a checkpoint boot's
// warm-restart win lands end to end. egserve opens its listener before
// WAL recovery and answers /readyz 503 until the first graph installs,
// so the poll measures readiness, not the process being up.
//
// After the run the harness scrapes the target's /metrics.prom,
// validates the exposition with the strict parser in internal/obs, and
// folds the server-side histograms into the report: per-stage epoch
// timings (eg_epoch_stage_seconds — WAL append, delta fold, CSR build,
// incremental analytics, checkpoint write, publish-to-visible) and
// per-endpoint serve latency p50/p99 as the server measured it. -lintProm
// URL runs only that scrape-and-validate step against URL and exits
// non-zero on any exposition defect — the CI soak harness calls it once
// per generation.
//
// Without -url the harness self-serves: it builds a random graph from
// -nodes/-stamps/-edges/-seed, mounts internal/server (with an
// in-memory ingest pipeline when -writeRatio > 0) on a loopback
// listener in-process and hammers that — one command to go from zero
// to a load report. With -url those three flags are ignored; the graph
// shape is read from the target's /stats.
//
// With -writeRatio R each worker turns that fraction of its requests
// into POST /ingest/arcs batches of -writeBatch events (mostly arc
// adds, some removes, the occasional new stamp). 429 backpressure
// responses are counted as throttled, not failed — that is the write
// path telling the client to slow down, and the report shows how often
// it did. The report also carries client-observed ingest-to-visible
// latency: the time from a write batch's 202 ack until some read first
// carries an X-Graph-Revision newer than the newest revision observed
// at ack time (p50/p99; a fold already in flight at ack time can
// attribute a write to one epoch early, so the number is exact to
// within one epoch).
//
// Each read endpoint draws its parameters from a pool of -distinct
// variants, so the workload repeats queries the way production traffic
// does and the analytics endpoints go hot after one cold computation
// each. The final report (stdout table, plus a JSON document under
// -json) gives p50/p90/p99 per endpoint and the server-side cache and
// ingest counters scraped from /metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	evolving "repro"
	"repro/egclient"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		target      = flag.String("url", "", "base URL of a running egserve (empty: self-serve an in-process server)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to run (ignored when -requests > 0)")
		requests    = flag.Int("requests", 0, "stop after this many requests (0: run for -duration)")
		concurrency = flag.Int("concurrency", 8, "concurrent client workers")
		distinct    = flag.Int("distinct", 4, "distinct parameter variants per endpoint (smaller = hotter cache)")
		mix         = flag.String("mix", "bfs:4,stats:2,weak:2,sizes:2,efficiency:2,katz:2,closeness:3,influence:1",
			"endpoint:weight list; endpoints: stats, bfs, reach, weak, strong, sizes, efficiency, katz, closeness, influence")
		writeRatio = flag.Float64("writeRatio", 0, "fraction of requests that POST /ingest/arcs batches (0 = read-only)")
		writeBatch = flag.Int("writeBatch", 16, "events per write batch")
		seed       = flag.Int64("seed", 1, "workload seed (and self-serve graph seed)")
		nodes      = flag.Int("nodes", 500, "self-serve: node count")
		stamps     = flag.Int("stamps", 8, "self-serve: stamp count")
		edges      = flag.Int("edges", 5_000, "self-serve: static edge count")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		waitReady  = flag.Duration("waitReady", 0, "poll /readyz until the first 200 (at most this long) before loading; the report records restartToReadyNs")
		jsonPath   = flag.String("json", "", "write the report to FILE as JSON")
		lintProm   = flag.String("lintProm", "", "strict-parse this /metrics.prom URL, check the required families, and exit (CI exposition linter; no load is generated)")
		chaos      = flag.String("chaos", "", "run a chaos soak instead of a load run: a named fault scenario (conn-flap, disk-full, fsync-stall, slow-compute) or inline fault DSL; self-serves an armed server, drives load for -duration and verifies the survival invariants")
		chaosOut   = flag.String("chaos-out", "", "write the chaos soak's JSON artifact to FILE (default: stdout)")

		compactEvery = flag.Int("compact-every", 256, "self-serve: fold the pending delta after this many events")
		compactIval  = flag.Duration("compact-interval", 500*time.Millisecond, "self-serve: fold any pending delta at least this often")

		visibility = flag.String("visibility", "inline",
			"how ingest-to-visible latency is observed: inline (piggyback on read responses), poll (dedicated /healthz poller — the deprecated pattern), feed (EGWP change-feed subscription — pushed)")
		pollInterval = flag.Duration("pollInterval", 50*time.Millisecond, "poller period for -visibility poll")
		wireTarget   = flag.String("wire", "", "EGWP address of the target for -visibility feed (self-serve opens its own)")
	)
	procStart := time.Now()
	flag.Parse()

	if *lintProm != "" {
		if err := lintPromURL(*lintProm, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "egload: lint %s: %v\n", *lintProm, err)
			os.Exit(1)
		}
		fmt.Printf("%s: exposition OK\n", *lintProm)
		return
	}

	if *chaos != "" {
		err := runChaos(chaosOptions{
			Scenario:    *chaos,
			Out:         *chaosOut,
			Duration:    *duration,
			Seed:        *seed,
			Nodes:       *nodes,
			Stamps:      *stamps,
			Edges:       *edges,
			Concurrency: *concurrency,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "egload: chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}

	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egload: %v\n", err)
		os.Exit(2)
	}
	if *concurrency < 1 || *distinct < 1 {
		fmt.Fprintln(os.Stderr, "egload: -concurrency and -distinct must be positive")
		os.Exit(2)
	}
	if *writeRatio < 0 || *writeRatio > 1 || (*writeRatio > 0 && *writeBatch < 1) {
		fmt.Fprintln(os.Stderr, "egload: -writeRatio must be in [0,1] and -writeBatch positive")
		os.Exit(2)
	}
	switch *visibility {
	case "inline", "poll", "feed":
	default:
		fmt.Fprintln(os.Stderr, "egload: -visibility must be inline, poll or feed")
		os.Exit(2)
	}

	base := *target
	if base == "" {
		g := evolving.Random(evolving.RandomConfig{
			Nodes: *nodes, Stamps: *stamps, Edges: *edges, Directed: true, Seed: *seed,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "egload: listen: %v\n", err)
			os.Exit(1)
		}
		srv := server.New(g, server.Config{})
		if *writeRatio > 0 {
			// In-memory write path so the self-serve mode can exercise
			// snapshot swaps without a WAL on disk.
			lg, err := ingest.New(srv, ingest.Config{
				CompactEvery:    *compactEvery,
				CompactInterval: *compactIval,
				// Share the server's registry so the self-serve report's
				// stage breakdown has real epoch timings in it.
				Registry: srv.Registry(),
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "egload: ingest: %v\n", err)
				os.Exit(1)
			}
			defer lg.Close()
			srv.AttachIngest(lg)
		}
		go http.Serve(ln, srv) //nolint:errcheck // torn down with the process
		base = "http://" + ln.Addr().String()
		if *visibility == "feed" && *wireTarget == "" {
			wl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "egload: wire listen: %v\n", err)
				os.Exit(1)
			}
			go srv.ServeWire(wl) //nolint:errcheck // torn down with the process
			*wireTarget = wl.Addr().String()
		}
		fmt.Printf("self-serving random graph (nodes=%d stamps=%d edges=%d seed=%d) at %s\n",
			*nodes, *stamps, *edges, *seed, base)
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: *timeout}

	// Restart-to-ready: poll /readyz until the target answers 200.
	// egserve's listener opens before WAL recovery (healthz is 200 the
	// whole time), so readiness — the first installed graph — is the
	// event this measures; it is where the recovery suite's ≥10x
	// warm-restart claim shows up end to end.
	var readyNS int64
	var readyPolls int
	if *waitReady > 0 {
		probe := &http.Client{Timeout: time.Second}
		deadline := time.Now().Add(*waitReady)
		ready := false
		for time.Now().Before(deadline) {
			readyPolls++
			resp, err := probe.Get(base + "/readyz")
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					ready = true
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !ready {
			fmt.Fprintf(os.Stderr, "egload: %s/readyz not ready after %s (%d polls)\n", base, *waitReady, readyPolls)
			os.Exit(1)
		}
		readyNS = time.Since(procStart).Nanoseconds()
		fmt.Printf("target ready after %s (%d polls)\n", time.Duration(readyNS).Round(time.Millisecond), readyPolls)
	}

	// The graph shape drives parameter generation for both modes.
	var stats server.StatsResponse
	if err := getJSON(client, base+"/stats", &stats); err != nil {
		fmt.Fprintf(os.Stderr, "egload: probing %s/stats: %v\n", base, err)
		os.Exit(1)
	}

	// The visibility notifier resolves write acks into ingest-to-visible
	// latencies. "inline" piggybacks on read responses (zero extra
	// traffic, but resolution is as coarse as the read rate); "poll"
	// dedicates a /healthz poller at -pollInterval — the deprecated
	// pattern the change-feed replaces and the baseline BENCH_8 measures
	// against; "feed" subscribes to the EGWP change-feed and resolves at
	// push time.
	vis := new(visTracker)
	stopNotifier := func() {}
	switch *visibility {
	case "poll":
		done := make(chan struct{})
		var stopped sync.WaitGroup
		stopped.Add(1)
		go func() {
			defer stopped.Done()
			probe := &http.Client{Timeout: time.Second}
			tick := time.NewTicker(*pollInterval)
			defer tick.Stop()
			for {
				var h server.HealthResponse
				if err := getJSON(probe, base+"/healthz", &h); err == nil {
					vis.observeRev(h.GraphRevision)
				}
				select {
				case <-tick.C:
				case <-done:
					return
				}
			}
		}()
		stopNotifier = func() { close(done); stopped.Wait() }
	case "feed":
		if *wireTarget == "" {
			fmt.Fprintln(os.Stderr, "egload: -visibility feed needs -wire (or self-serve mode)")
			os.Exit(2)
		}
		ctx, cancel := context.WithCancel(context.Background())
		wc, err := egclient.DialWire(ctx, *wireTarget)
		if err != nil {
			cancel()
			fmt.Fprintf(os.Stderr, "egload: dialing wire %s: %v\n", *wireTarget, err)
			os.Exit(1)
		}
		sub, err := wc.Subscribe(ctx, egclient.FeedSpec{Kind: egclient.KindRevision, Cursor: egclient.CursorLive})
		if err != nil {
			cancel()
			fmt.Fprintf(os.Stderr, "egload: subscribing: %v\n", err)
			os.Exit(1)
		}
		var stopped sync.WaitGroup
		stopped.Add(1)
		go func() {
			defer stopped.Done()
			for {
				ev, err := sub.Next(ctx)
				if err != nil {
					return
				}
				vis.observeRev(ev.Revision)
			}
		}()
		stopNotifier = func() {
			cancel()
			sub.Close()
			wc.Close()
			stopped.Wait()
		}
	}

	rep := run(client, base, stats, weights, *concurrency, *distinct, *requests, *duration, *seed,
		*writeRatio, *writeBatch, vis, *visibility == "inline")
	stopNotifier()
	vis.fold(rep)
	rep.VisibilityMode = *visibility
	if *visibility == "poll" {
		rep.PollIntervalNS = pollInterval.Nanoseconds()
	}
	rep.RestartToReadyNS = readyNS
	rep.ReadyPolls = readyPolls

	// Scrape the server-side counters; optional (a non-repro target has
	// no /metrics).
	var m server.MetricsResponse
	if err := getJSON(client, base+"/metrics", &m); err == nil {
		rep.ServerMetrics = &m
		rep.CacheHitRate = m.CacheHitRate
	}
	// And the Prometheus exposition: strict-parse it and fold the
	// server-measured histograms — per-stage epoch timings and
	// per-endpoint serve latency — into the report.
	if err := scrapeProm(client, base, rep); err != nil {
		fmt.Fprintf(os.Stderr, "egload: scraping /metrics.prom: %v\n", err)
	}

	printReport(rep)
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "egload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote report to %s\n", *jsonPath)
	}
}

// endpointReport is the per-endpoint slice of the JSON report.
type endpointReport struct {
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	NotFound  int     `json:"notFound"`
	Throttled int     `json:"throttled"`
	P50NS     int64   `json:"p50ns"`
	P90NS     int64   `json:"p90ns"`
	P99NS     int64   `json:"p99ns"`
	MaxNS     int64   `json:"maxNs"`
	MeanNS    int64   `json:"meanNs"`
	HitRate   float64 `json:"xCacheHitRate"`
}

// report is the egload -json document.
type report struct {
	Target          string           `json:"target"`
	Concurrency     int              `json:"concurrency"`
	Distinct        int              `json:"distinct"`
	Seed            int64            `json:"seed"`
	WriteRatio      float64          `json:"writeRatio"`
	DurationSeconds float64          `json:"durationSeconds"`
	TotalRequests   int              `json:"totalRequests"`
	Errors          int              `json:"errors"`
	Throttled       int              `json:"throttled"`
	Throughput      float64          `json:"requestsPerSecond"`
	Endpoints       []endpointReport `json:"endpoints"`
	CacheHitRate    float64          `json:"cacheHitRate"`
	// Ingest-to-visible latency (write ack → first read observing a
	// newer X-Graph-Revision), measured client-side across the whole
	// run; zero counts mean the run had no writes or no revision ever
	// advanced past an acked write.
	// Restart-to-ready (-waitReady): egload start → first 200 from
	// /healthz. Launched alongside a restarting server this is its
	// boot-to-serving time — checkpoint boots cut it by the recovery
	// suite's warm-restart factor.
	RestartToReadyNS int64 `json:"restartToReadyNs,omitempty"`
	ReadyPolls       int   `json:"readyPolls,omitempty"`
	// VisibilityMode records how acks were resolved: inline, poll (the
	// deprecated header-polling baseline) or feed (pushed change-feed).
	// BENCH_8 compares poll vs feed p99 on identical workloads.
	VisibilityMode    string                  `json:"visibilityMode"`
	PollIntervalNS    int64                   `json:"pollIntervalNs,omitempty"`
	VisibleCount      int                     `json:"ingestVisibleCount,omitempty"`
	VisibleUnresolved int                     `json:"ingestVisibleUnresolved,omitempty"`
	VisibleP50NS      int64                   `json:"ingestVisibleP50Ns,omitempty"`
	VisibleP99NS      int64                   `json:"ingestVisibleP99Ns,omitempty"`
	ServerMetrics     *server.MetricsResponse `json:"serverMetrics,omitempty"`
	// Server-measured histograms scraped from /metrics.prom after the
	// run: the write path's per-stage epoch timings and each endpoint's
	// serve latency as the server recorded it (all cache outcomes and
	// transports merged) — the server-side counterpart of the
	// client-observed percentiles above.
	IngestStages []stageReport `json:"ingestStages,omitempty"`
	ServeLatency []promLatency `json:"serverLatency,omitempty"`
}

// stageReport is one pipeline stage of the scraped
// eg_epoch_stage_seconds histogram: wal (append+fsync), fold (Patch or
// full rebuild), csr (flat CSR build), analytics (incremental
// maintenance), checkpoint (persist) and visible (publish-to-visible).
type stageReport struct {
	Stage      string  `json:"stage"`
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sumSeconds"`
	P50NS      int64   `json:"p50ns"`
	P99NS      int64   `json:"p99ns"`
}

// promLatency is one endpoint's serve latency reassembled from the
// scraped eg_serve_latency_seconds histogram.
type promLatency struct {
	Endpoint string `json:"endpoint"`
	Count    uint64 `json:"count"`
	P50NS    int64  `json:"p50ns"`
	P99NS    int64  `json:"p99ns"`
}

// visTracker resolves ingest-to-visible latencies: every write ack
// registers (ack time, newest revision seen so far); every read
// response advances the high-water revision and resolves the pending
// acks older than it.
type visTracker struct {
	maxRev atomic.Uint64
	mu     sync.Mutex
	pend   []visPending
	lats   []time.Duration
}

type visPending struct {
	ack time.Time
	rev uint64
}

func (vt *visTracker) acked() {
	vt.mu.Lock()
	vt.pend = append(vt.pend, visPending{ack: time.Now(), rev: vt.maxRev.Load()})
	vt.mu.Unlock()
}

func (vt *visTracker) observe(revStr string) {
	if revStr == "" {
		return
	}
	r, err := strconv.ParseUint(revStr, 10, 64)
	if err != nil {
		return
	}
	vt.observeRev(r)
}

func (vt *visTracker) observeRev(r uint64) {
	for {
		cur := vt.maxRev.Load()
		if r <= cur {
			return
		}
		if vt.maxRev.CompareAndSwap(cur, r) {
			break
		}
	}
	now := time.Now()
	vt.mu.Lock()
	keep := vt.pend[:0]
	for _, p := range vt.pend {
		if p.rev < r {
			vt.lats = append(vt.lats, now.Sub(p.ack))
		} else {
			keep = append(keep, p)
		}
	}
	vt.pend = keep
	vt.mu.Unlock()
}

// fold writes the tracker's percentiles into the report.
func (vt *visTracker) fold(rep *report) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	rep.VisibleUnresolved = len(vt.pend)
	if len(vt.lats) == 0 {
		return
	}
	sort.Slice(vt.lats, func(i, j int) bool { return vt.lats[i] < vt.lats[j] })
	rep.VisibleCount = len(vt.lats)
	rep.VisibleP50NS = percentile(vt.lats, 50).Nanoseconds()
	rep.VisibleP99NS = percentile(vt.lats, 99).Nanoseconds()
}

// sample is one completed request.
type sample struct {
	endpoint  string
	dur       time.Duration
	status    int
	xcache    string
	failed    bool
	throttled bool
}

// labelPool is the time labels writers may target: the served graph's
// own labels plus any fresh stamps the workload opened. Fresh labels
// are allocated above the current maximum so concurrent workers never
// collide with an existing stamp.
type labelPool struct {
	mu     sync.Mutex
	labels []int64
	next   int64
}

func newLabelPool(stats server.StatsResponse) *labelPool {
	labels := append([]int64(nil), stats.TimeLabels...)
	if len(labels) == 0 {
		// Pre-TimeLabels servers: the generators label stamps 1..S.
		for t := 1; t <= stats.Stamps; t++ {
			labels = append(labels, int64(t))
		}
	}
	maxL := labels[0]
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	return &labelPool{labels: labels, next: maxL + 1}
}

func (p *labelPool) random(rng *rand.Rand) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.labels[rng.Intn(len(p.labels))]
}

// fresh allocates a label above every existing one without publishing
// it: the allocating worker writes the AddStamp batch first and calls
// commit once the server acknowledged it. Publishing earlier would let
// another worker's arc batch race ahead of the stamp registration and
// draw a 400.
func (p *labelPool) fresh() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := p.next
	p.next++
	return l
}

func (p *labelPool) commit(l int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.labels = append(p.labels, l)
}

// buildWriteBody assembles one NDJSON batch: mostly arc adds, ~15%
// removes, and every ~16th batch opens a fresh stamp and writes into
// it — the append-mostly shape of an evolving graph. fresh is the
// newly opened label (commit it on acceptance), or 0 with ok=false.
func buildWriteBody(rng *rand.Rand, pool *labelPool, nodes, batch int) (body string, fresh int64, ok bool) {
	var b strings.Builder
	if rng.Intn(16) == 0 {
		fresh, ok = pool.fresh(), true
		fmt.Fprintf(&b, "{\"op\":\"stamp\",\"t\":%d}\n", fresh)
		fmt.Fprintf(&b, "{\"op\":\"add\",\"u\":%d,\"v\":%d,\"t\":%d}\n",
			rng.Intn(nodes), nodes, fresh) // first arc into the new stamp
	}
	for i := 0; i < batch; i++ {
		u := rng.Intn(nodes)
		v := rng.Intn(nodes)
		if u == v {
			v = (v + 1) % nodes
		}
		op := "add"
		if rng.Intn(100) < 15 {
			op = "remove"
		}
		fmt.Fprintf(&b, "{\"op\":%q,\"u\":%d,\"v\":%d,\"t\":%d}\n", op, u, v, pool.random(rng))
	}
	return b.String(), fresh, ok
}

// run drives the workers and folds their samples into a report.
func run(client *http.Client, base string, stats server.StatsResponse, weights []weighted,
	concurrency, distinct, maxRequests int, duration time.Duration, seed int64,
	writeRatio float64, writeBatch int, vis *visTracker, inlineVis bool) *report {

	var (
		issued  atomic.Int64
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	pool := newLabelPool(stats)
	deadline := time.Now().Add(duration)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			var local []sample
			for {
				if maxRequests > 0 {
					if issued.Add(1) > int64(maxRequests) {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				if writeRatio > 0 && rng.Float64() < writeRatio {
					body, fresh, opened := buildWriteBody(rng, pool, stats.Nodes, writeBatch)
					t0 := time.Now()
					resp, err := client.Post(base+"/ingest/arcs", "application/x-ndjson", strings.NewReader(body))
					s := sample{endpoint: "ingest", dur: time.Since(t0)}
					if err != nil {
						s.failed = true
					} else {
						s.status = resp.StatusCode
						resp.Body.Close()
						switch {
						case resp.StatusCode == http.StatusTooManyRequests:
							// Backpressure is the contract working, not
							// a failure; count it separately.
							s.throttled = true
						case resp.StatusCode != http.StatusAccepted:
							s.failed = true
						default:
							vis.acked()
							if opened {
								// The stamp is registered server-side;
								// other workers may target it now.
								pool.commit(fresh)
							}
						}
					}
					local = append(local, s)
					continue
				}
				ep := pick(rng, weights)
				url := base + buildPath(ep, rng.Intn(distinct), stats)
				t0 := time.Now()
				resp, err := client.Get(url)
				el := time.Since(t0)
				s := sample{endpoint: ep, dur: el}
				if err != nil {
					s.failed = true
				} else {
					s.status = resp.StatusCode
					s.xcache = resp.Header.Get("X-Cache")
					if inlineVis {
						// In poll/feed mode the dedicated notifier owns
						// resolution, so the measurement isolates the
						// notification channel under test.
						vis.observe(resp.Header.Get("X-Graph-Revision"))
					}
					resp.Body.Close()
					// 5xx is a server failure; 404 on a randomly drawn
					// inactive root is an expected answer.
					if resp.StatusCode >= 500 {
						s.failed = true
					}
				}
				local = append(local, s)
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Target:          base,
		Concurrency:     concurrency,
		Distinct:        distinct,
		Seed:            seed,
		WriteRatio:      writeRatio,
		DurationSeconds: elapsed.Seconds(),
		TotalRequests:   len(samples),
		Throughput:      float64(len(samples)) / elapsed.Seconds(),
	}
	byEndpoint := make(map[string][]sample)
	for _, s := range samples {
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s)
		if s.failed {
			rep.Errors++
		}
		if s.throttled {
			rep.Throttled++
		}
	}
	names := make([]string, 0, len(byEndpoint))
	for name := range byEndpoint {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := byEndpoint[name]
		durs := make([]time.Duration, 0, len(ss))
		er := endpointReport{Name: name, Count: len(ss)}
		hits := 0
		cacheable := 0
		var sum time.Duration
		for _, s := range ss {
			durs = append(durs, s.dur)
			sum += s.dur
			if s.failed {
				er.Errors++
			}
			if s.throttled {
				er.Throttled++
			}
			if s.status == http.StatusNotFound {
				er.NotFound++
			}
			if s.xcache != "" {
				cacheable++
				if s.xcache != "miss" {
					hits++
				}
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		er.P50NS = percentile(durs, 50).Nanoseconds()
		er.P90NS = percentile(durs, 90).Nanoseconds()
		er.P99NS = percentile(durs, 99).Nanoseconds()
		er.MaxNS = durs[len(durs)-1].Nanoseconds()
		er.MeanNS = (sum / time.Duration(len(ss))).Nanoseconds()
		if cacheable > 0 {
			er.HitRate = float64(hits) / float64(cacheable)
		}
		rep.Endpoints = append(rep.Endpoints, er)
	}
	return rep
}

// buildPath maps an endpoint name and a variant index to a concrete
// request path. Variants cycle through a small pool of parameter
// combinations so the workload repeats queries.
func buildPath(endpoint string, variant int, stats server.StatsResponse) string {
	mode := [...]string{"allpairs", "consecutive"}[variant%2]
	node := (variant * 7919) % stats.Nodes
	stamp := variant % stats.Stamps
	switch endpoint {
	case "stats":
		return "/stats"
	case "bfs":
		return fmt.Sprintf("/bfs?node=%d&stamp=%d", node, stamp)
	case "reach":
		return fmt.Sprintf("/reach?node=%d&stamp=%d", node, stamp)
	case "weak":
		return "/components/weak?mode=" + mode
	case "strong":
		return fmt.Sprintf("/components/strong?minSize=%d", 2+variant%3)
	case "sizes":
		return "/components/sizes?mode=" + mode
	case "efficiency":
		return "/efficiency?mode=" + mode
	case "katz":
		return fmt.Sprintf("/katz?alpha=%g&top=10", 0.05+0.01*float64(variant%5))
	case "closeness":
		return fmt.Sprintf("/closeness?node=%d&stamp=%d", node, stamp)
	case "influence":
		return fmt.Sprintf("/influence/greedy?k=%d", 1+variant%5)
	default:
		return "/stats"
	}
}

type weighted struct {
	name   string
	weight int
}

var knownEndpoints = map[string]bool{
	"stats": true, "bfs": true, "reach": true, "weak": true, "strong": true,
	"sizes": true, "efficiency": true, "katz": true, "closeness": true, "influence": true,
}

func parseMix(s string) ([]weighted, error) {
	var out []weighted
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, found := strings.Cut(part, ":")
		weight := 1
		if found {
			var err error
			weight, err = strconv.Atoi(weightStr)
			if err != nil || weight < 1 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
		}
		if !knownEndpoints[name] {
			return nil, fmt.Errorf("unknown endpoint %q in -mix", name)
		}
		out = append(out, weighted{name, weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -mix")
	}
	return out, nil
}

func pick(rng *rand.Rand, weights []weighted) string {
	total := 0
	for _, w := range weights {
		total += w.weight
	}
	n := rng.Intn(total)
	for _, w := range weights {
		n -= w.weight
		if n < 0 {
			return w.name
		}
	}
	return weights[len(weights)-1].name
}

// percentile returns the pth percentile of sorted durations
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// scrapeProm fetches base/metrics.prom, strict-parses it and folds the
// server-measured histograms into rep. A parse failure is reported (the
// exposition contract is part of the surface under test); a missing
// endpoint is not (non-repro targets).
func scrapeProm(client *http.Client, base string, rep *report) error {
	resp, err := client.Get(base + "/metrics.prom")
	if err != nil {
		return nil // target has no Prometheus surface; skip silently
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		return fmt.Errorf("strict parse: %w", err)
	}
	if f := fams["eg_epoch_stage_seconds"]; f != nil {
		for _, h := range f.Hists {
			rep.IngestStages = append(rep.IngestStages, stageReport{
				Stage:      h.Labels["stage"],
				Count:      uint64(h.Count),
				SumSeconds: h.Sum,
				P50NS:      int64(h.Quantile(0.50) * 1e9),
				P99NS:      int64(h.Quantile(0.99) * 1e9),
			})
		}
		sort.Slice(rep.IngestStages, func(i, j int) bool {
			return rep.IngestStages[i].Stage < rep.IngestStages[j].Stage
		})
	}
	if f := fams["eg_serve_latency_seconds"]; f != nil {
		merged := make(map[string]*obs.PromHist)
		for _, h := range f.Hists {
			ep := h.Labels["endpoint"]
			m := merged[ep]
			if m == nil {
				merged[ep] = &obs.PromHist{
					Labels:     map[string]string{"endpoint": ep},
					Bounds:     append([]float64(nil), h.Bounds...),
					Cumulative: append([]float64(nil), h.Cumulative...),
					Sum:        h.Sum,
					Count:      h.Count,
				}
				continue
			}
			if len(m.Cumulative) != len(h.Cumulative) {
				continue // foreign exposition with per-series bounds; skip
			}
			for i := range m.Cumulative {
				m.Cumulative[i] += h.Cumulative[i]
			}
			m.Sum += h.Sum
			m.Count += h.Count
		}
		for ep, h := range merged {
			rep.ServeLatency = append(rep.ServeLatency, promLatency{
				Endpoint: ep,
				Count:    uint64(h.Count),
				P50NS:    int64(h.Quantile(0.50) * 1e9),
				P99NS:    int64(h.Quantile(0.99) * 1e9),
			})
		}
		sort.Slice(rep.ServeLatency, func(i, j int) bool {
			return rep.ServeLatency[i].Endpoint < rep.ServeLatency[j].Endpoint
		})
	}
	return nil
}

// lintPromURL is the -lintProm mode: fetch one exposition, run it
// through the strict parser and require the families every healthy
// server must expose. CI calls this once per soak generation.
func lintPromURL(url string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		return fmt.Errorf("strict parse: %w", err)
	}
	for _, want := range []struct{ name, typ string }{
		{"eg_serve_latency_seconds", "histogram"},
		{"eg_graph_revision", "gauge"},
		{"eg_requests_total", "counter"},
		{"eg_goroutines", "gauge"},
	} {
		f := fams[want.name]
		if f == nil {
			return fmt.Errorf("missing family %s", want.name)
		}
		if f.Type != want.typ {
			return fmt.Errorf("family %s has type %s, want %s", want.name, f.Type, want.typ)
		}
	}
	fmt.Printf("parsed %d families\n", len(fams))
	return nil
}

func getJSON(client *http.Client, url string, into interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func printReport(rep *report) {
	fmt.Printf("\n# egload: %d requests in %.2fs (%.0f req/s, concurrency %d, distinct %d), %d errors, %d throttled\n",
		rep.TotalRequests, rep.DurationSeconds, rep.Throughput, rep.Concurrency, rep.Distinct, rep.Errors, rep.Throttled)
	fmt.Printf("%-12s %8s %7s %5s %5s %12s %12s %12s %8s\n",
		"endpoint", "count", "errors", "429s", "404s", "p50", "p90", "p99", "hit")
	for _, ep := range rep.Endpoints {
		hit := "-"
		if ep.HitRate > 0 || strings.Contains("weak strong sizes efficiency katz closeness influence", ep.Name) {
			hit = fmt.Sprintf("%5.1f%%", 100*ep.HitRate)
		}
		fmt.Printf("%-12s %8d %7d %5d %5d %12s %12s %12s %8s\n",
			ep.Name, ep.Count, ep.Errors, ep.Throttled, ep.NotFound,
			time.Duration(ep.P50NS).Round(time.Microsecond),
			time.Duration(ep.P90NS).Round(time.Microsecond),
			time.Duration(ep.P99NS).Round(time.Microsecond),
			hit)
	}
	if rep.RestartToReadyNS > 0 {
		fmt.Printf("\nrestart-to-ready: %s (%d /readyz polls)\n",
			time.Duration(rep.RestartToReadyNS).Round(time.Millisecond), rep.ReadyPolls)
	}
	if rep.VisibleCount > 0 {
		fmt.Printf("\ningest-to-visible via %s (ack → first newer revision observed): p50=%s p99=%s over %d writes (%d unresolved at shutdown)\n",
			rep.VisibilityMode,
			time.Duration(rep.VisibleP50NS).Round(time.Microsecond),
			time.Duration(rep.VisibleP99NS).Round(time.Microsecond),
			rep.VisibleCount, rep.VisibleUnresolved)
	}
	if rep.ServerMetrics != nil {
		c := rep.ServerMetrics.Cache
		fmt.Printf("\nserver cache: hitRate=%.1f%% hits=%d misses=%d collapsed=%d entries=%d evictions=%d inFlight=%d/%d\n",
			100*rep.CacheHitRate, c.Hits, c.Misses, c.Collapsed, c.Entries, c.Evictions,
			rep.ServerMetrics.InFlight, rep.ServerMetrics.MaxInFlight)
		if ig := rep.ServerMetrics.Ingest; ig != nil {
			fmt.Printf("server ingest: appended=%d pending=%d epochs=%d (patch=%d full=%d) compacted=%d throttled=%d lastCompact=%.1fms lastCsrBuild=%.1fms lastVisible=%.1fms\n",
				ig.AppendedEvents, ig.PendingEvents, ig.Epochs, ig.PatchEpochs, ig.FullRebuildEpochs,
				ig.CompactedEvents, ig.ThrottledBatches, ig.LastCompactMs, ig.LastCSRBuildMs, ig.LastVisibleMs)
		}
	}
	if len(rep.IngestStages) > 0 {
		fmt.Printf("\nepoch stage breakdown (server-measured, scraped from /metrics.prom):\n")
		fmt.Printf("%-12s %8s %12s %12s %12s\n", "stage", "count", "p50", "p99", "total")
		for _, st := range rep.IngestStages {
			fmt.Printf("%-12s %8d %12s %12s %12s\n",
				st.Stage, st.Count,
				time.Duration(st.P50NS).Round(time.Microsecond),
				time.Duration(st.P99NS).Round(time.Microsecond),
				(time.Duration(st.SumSeconds * float64(time.Second))).Round(time.Millisecond))
		}
	}
	if len(rep.ServeLatency) > 0 {
		fmt.Printf("\nserver-side serve latency (all outcomes/transports merged):\n")
		fmt.Printf("%-20s %8s %12s %12s\n", "endpoint", "count", "p50", "p99")
		for _, l := range rep.ServeLatency {
			fmt.Printf("%-20s %8d %12s %12s\n", l.Endpoint, l.Count,
				time.Duration(l.P50NS).Round(time.Microsecond),
				time.Duration(l.P99NS).Round(time.Microsecond))
		}
	}
}
