// Chaos soak (-chaos): self-serve a fully armed server — WAL, compactor,
// checkpoints, HTTP, wire feed — with a fault-injection scenario wired
// into every layer, hammer it with concurrent reads, writes and a
// reconnecting feed subscriber for -duration, then prove four
// invariants over the wreckage:
//
//  1. no wrong answers: every read either succeeds with a decodable
//     body or is refused with a retriable rejection — and, when the
//     write path survived, the served graph answers byte-identically
//     to a fault-free oracle recovered from the WAL;
//  2. byte-identical recovery: recovering twice — full replay vs
//     checkpoint + tail — yields checkpoint-encoding-identical graphs;
//  3. feed continuity: delivered revisions are strictly increasing
//     across every reconnect, with gaps declared, never silent;
//  4. no goroutine leaks: after the load drains and every client
//     vanishes, the process is back to its pre-load goroutine count.
//
// The run emits a JSON artifact (scenario, per-site fired counts from
// the injector, request/error tallies, one verdict per invariant) and
// exits non-zero if any invariant fails — this is the command the CI
// chaos matrix drives once per named scenario.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	evolving "repro"
	"repro/egclient"
	"repro/internal/egio"
	"repro/internal/egraph"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/server"
)

type chaosOptions struct {
	Scenario    string
	Out         string // JSON artifact path ("" = stdout)
	Duration    time.Duration
	Seed        int64
	Nodes       int
	Stamps      int
	Edges       int
	Concurrency int
}

type chaosInvariant struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

type chaosReadStats struct {
	OK          int64 `json:"ok"`
	Stale       int64 `json:"stale"`
	Unavailable int64 `json:"unavailable"` // 429/503 after client retries
	CircuitOpen int64 `json:"circuitOpen"`
	Timeout     int64 `json:"timeout"`
	Transport   int64 `json:"transport"`
	Wrong       int64 `json:"wrong"` // 4xx or undecodable body: invariant violations
}

type chaosWriteStats struct {
	Acked       int64 `json:"acked"`
	AckedEvents int64 `json:"ackedEvents"`
	Rejected    int64 `json:"rejected"` // 429/503 after client retries
	CircuitOpen int64 `json:"circuitOpen"`
	Timeout     int64 `json:"timeout"`
	Transport   int64 `json:"transport"`
	Wrong       int64 `json:"wrong"`
}

type chaosFeedStats struct {
	Events      int64  `json:"events"`
	Gaps        int64  `json:"gaps"`
	MaxRevision uint64 `json:"maxRevision"`
	NonMonotone int64  `json:"nonMonotone"`
}

type chaosReport struct {
	Scenario      string           `json:"scenario"`
	DSL           string           `json:"dsl"`
	Seed          int64            `json:"seed"`
	DurationMs    int64            `json:"durationMs"`
	Reads         chaosReadStats   `json:"reads"`
	Writes        chaosWriteStats  `json:"writes"`
	Feed          chaosFeedStats   `json:"feed"`
	FaultsFired   map[string]int64 `json:"faultsFired"`
	Degraded      bool             `json:"degraded"`
	DegradedCause string           `json:"degradedCause,omitempty"`
	Invariants    []chaosInvariant `json:"invariants"`
	Pass          bool             `json:"pass"`
}

// chaosSweep is the endpoint set the oracle comparison replays on both
// servers. Parameter-deterministic, read-only, cheap enough to run on
// the self-serve graph.
var chaosSweep = []string{
	"/katz?top=8",
	"/components/weak",
	"/components/sizes?stamp=0",
	"/closeness?node=0&stamp=0",
	"/closeness?node=1&stamp=0",
}

func runChaos(o chaosOptions) error {
	text := fault.Named(o.Scenario)
	if text == "" {
		if strings.ContainsAny(o.Scenario, " \n=") {
			text = o.Scenario // inline DSL
		} else {
			return fmt.Errorf("unknown scenario %q (named: %s; or pass inline fault DSL)",
				o.Scenario, strings.Join(fault.Names(), ", "))
		}
	}
	sc, err := fault.Parse(text)
	if err != nil {
		return fmt.Errorf("scenario %q: %w", o.Scenario, err)
	}
	inj := fault.New(sc)

	dir, err := os.MkdirTemp("", "egload-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "wal.log")
	ckptPath := filepath.Join(dir, "graph.ckpt")
	quiet := func(string, ...interface{}) {}

	baseCfg := evolving.RandomConfig{
		Nodes: o.Nodes, Stamps: o.Stamps, Edges: o.Edges, Directed: true, Seed: o.Seed,
	}
	wal, _, err := ingest.OpenWAL(walPath, ingest.WALOptions{Policy: ingest.SyncAlways, Faults: inj})
	if err != nil {
		return fmt.Errorf("open WAL: %w", err)
	}
	srv := server.New(evolving.Random(baseCfg), server.Config{
		Faults:     inj,
		ServeStale: true,
		Logf:       quiet,
	})
	lg, err := ingest.New(srv, ingest.Config{
		WAL:                wal,
		CompactEvery:       64,
		CompactInterval:    25 * time.Millisecond,
		CheckpointPath:     ckptPath,
		CheckpointEvery:    2,
		CheckpointInterval: 50 * time.Millisecond,
		Faults:             inj,
		Registry:           srv.Registry(),
		Logf:               quiet,
	})
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	srv.AttachIngest(lg)

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go http.Serve(httpLn, srv) //nolint:errcheck // torn down with the process
	go srv.ServeWire(wireLn)   //nolint:errcheck
	baseURL := "http://" + httpLn.Addr().String()
	wireAddr := wireLn.Addr().String()
	fmt.Printf("chaos %s: %s (wire %s), WAL %s\n", o.Scenario, baseURL, wireAddr, walPath)

	// Pre-load goroutine baseline: listeners, compactor and checkpoint
	// timer are already running; everything the load adds must be gone
	// after the drain. Keep-alives are off so HTTP connections die with
	// their requests instead of idling in a pool.
	transport := &http.Transport{DisableKeepAlives: true}
	httpClient := &http.Client{Timeout: 10 * time.Second, Transport: transport}
	warm, err := httpClient.Get(baseURL + "/readyz")
	if err != nil {
		return fmt.Errorf("readiness probe: %w", err)
	}
	warm.Body.Close()
	time.Sleep(100 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	rep := &chaosReport{Scenario: o.Scenario, DSL: text, Seed: o.Seed, DurationMs: o.Duration.Milliseconds()}
	var reads chaosReadStats
	var writes chaosWriteStats
	var feedStats chaosFeedStats

	lctx, lcancel := context.WithTimeout(context.Background(), o.Duration)
	policy := egclient.RetryPolicy{
		MaxAttempts:      3,
		BaseBackoff:      10 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		BreakerThreshold: 8,
		BreakerCooldown:  200 * time.Millisecond,
		Seed:             o.Seed,
	}

	var wg sync.WaitGroup

	// Feed subscriber: survives every conn flap via cursor resume; only
	// the context ends it. Gaps are legal (declared loss), silence is not.
	wg.Add(1)
	var lastRev atomic.Uint64
	go func() {
		defer wg.Done()
		sub := egclient.SubscribeReconnect(lctx, wireAddr,
			egclient.FeedSpec{Kind: egclient.KindRevision, Cursor: egclient.CursorLive},
			egclient.RetryPolicy{
				MaxAttempts: 1 << 20, // reconnect until the soak ends
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
				Seed:        o.Seed,
			})
		defer sub.Close()
		for {
			ev, err := sub.Next(lctx)
			if err != nil {
				return
			}
			if ev.Kind == egclient.KindGap {
				atomic.AddInt64(&feedStats.Gaps, 1)
				continue
			}
			if prev := lastRev.Load(); ev.Revision <= prev && prev != 0 {
				atomic.AddInt64(&feedStats.NonMonotone, 1)
			}
			lastRev.Store(ev.Revision)
			atomic.AddInt64(&feedStats.Events, 1)
		}
	}()

	// One writer: arc batches at the base stamps, retried only when the
	// server declined them (egclient never replays an ambiguous batch).
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := egclient.NewHTTP(baseURL, egclient.HTTPOptions{Client: httpClient}).WithRetry(policy)
		defer c.Close()
		rng := rand.New(rand.NewSource(o.Seed + 1))
		for lctx.Err() == nil {
			batch := make([]egclient.Event, 1+rng.Intn(4))
			for i := range batch {
				u, v := rng.Intn(o.Nodes), rng.Intn(o.Nodes)
				if u == v {
					v = (v + 1) % o.Nodes
				}
				batch[i] = egclient.Event{Op: egclient.AddArc, U: int32(u), V: int32(v), T: int64(1 + rng.Intn(o.Stamps))}
			}
			ctx, cancel := context.WithTimeout(lctx, 2*time.Second)
			_, err := c.IngestArcs(ctx, batch)
			cancel()
			classifyChaosErr(err, &writes.Acked, &writes.Rejected, &writes.CircuitOpen,
				&writes.Timeout, &writes.Transport, &writes.Wrong, lctx)
			if err == nil {
				atomic.AddInt64(&writes.AckedEvents, int64(len(batch)))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers: budgeted queries across the sweep endpoints. A deadline
	// on every request exercises X-Budget-Ms admission end to end.
	readEndpoints := []struct {
		endpoint string
		params   url.Values
	}{
		{"katz", url.Values{"top": {"8"}}},
		{"components/weak", nil},
		{"components/sizes", url.Values{"stamp": {"0"}}},
		{"closeness", url.Values{"node": {"0"}, "stamp": {"0"}}},
	}
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := egclient.NewHTTP(baseURL, egclient.HTTPOptions{Client: httpClient}).WithRetry(policy)
			defer c.Close()
			rng := rand.New(rand.NewSource(o.Seed + 100 + int64(w)))
			for lctx.Err() == nil {
				q := readEndpoints[rng.Intn(len(readEndpoints))]
				ctx, cancel := context.WithTimeout(lctx, 500*time.Millisecond)
				var into interface{}
				meta, err := c.Query(ctx, q.endpoint, q.params, &into)
				cancel()
				classifyChaosErr(err, &reads.OK, &reads.Unavailable, &reads.CircuitOpen,
					&reads.Timeout, &reads.Transport, &reads.Wrong, lctx)
				if err == nil && meta.Cache == "stale" {
					atomic.AddInt64(&reads.Stale, 1)
				}
			}
		}(w)
	}

	wg.Wait()
	lcancel()
	transport.CloseIdleConnections()
	rep.Reads, rep.Writes, rep.Feed = reads, writes, feedStats
	rep.Feed.MaxRevision = lastRev.Load()
	rep.Degraded, rep.DegradedCause = lg.Degraded()

	addInv := func(name string, pass bool, detail string) {
		rep.Invariants = append(rep.Invariants, chaosInvariant{Name: name, Pass: pass, Detail: detail})
	}

	// Invariant 1a: the live service degraded instead of lying — no
	// request ever produced a wrong answer or an unexplained rejection.
	addInv("no-wrong-answers-live", reads.Wrong == 0 && writes.Wrong == 0,
		fmt.Sprintf("reads wrong=%d writes wrong=%d (ok=%d unavailable=%d acked=%d rejected=%d)",
			reads.Wrong, writes.Wrong, reads.OK, reads.Unavailable, writes.Acked, writes.Rejected))

	// Invariant 1b: degraded semantics — while the write path is
	// poisoned reads must still serve and writes must be refused 503;
	// when it is healthy a fresh write must land.
	degPass, degDetail := chaosDegradedSemantics(rep.Degraded, baseURL, httpClient)
	addInv("degraded-semantics", degPass, degDetail)

	// Fold and sweep the live server before tearing ingest down, so the
	// oracle comparison sees everything the service ever acked.
	if !rep.Degraded {
		lg.CompactNow()
	}
	liveBodies, liveErr := chaosSweepBodies(srv)
	if err := lg.Close(); err != nil && !rep.Degraded {
		addInv("clean-shutdown", false, fmt.Sprintf("ingest close: %v", err))
	}

	// Invariants 1c + 2: fault-free recovery from the surviving WAL —
	// replay path and checkpoint path must agree byte-for-byte, and
	// (when the write path survived) the served graph must answer
	// exactly like the recovered oracle.
	oracleInv, recoverInv := chaosRecoveryInvariants(dir, walPath, ckptPath, baseCfg, rep.Degraded, liveBodies, liveErr)
	rep.Invariants = append(rep.Invariants, oracleInv, recoverInv)

	// Invariant 3: feed continuity.
	addInv("feed-monotonic", feedStats.NonMonotone == 0 && (feedStats.Events > 0 || feedStats.Gaps > 0),
		fmt.Sprintf("events=%d gaps=%d nonMonotone=%d maxRevision=%d",
			feedStats.Events, feedStats.Gaps, feedStats.NonMonotone, rep.Feed.MaxRevision))

	// Invariant 4: every goroutine the load created is gone.
	leakDetail := ""
	leakPass := true
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			leakPass = false
			leakDetail = fmt.Sprintf("goroutines: %d at baseline, %d after drain", baseline, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leakPass {
		leakDetail = fmt.Sprintf("back to baseline (%d)", baseline)
	}
	addInv("no-goroutine-leaks", leakPass, leakDetail)

	rep.FaultsFired = inj.Counts()
	rep.Pass = true
	for _, inv := range rep.Invariants {
		rep.Pass = rep.Pass && inv.Pass
	}
	if err := writeChaosReport(rep, o.Out); err != nil {
		return err
	}
	for _, inv := range rep.Invariants {
		mark := "PASS"
		if !inv.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  %-24s %s  %s\n", inv.Name, mark, inv.Detail)
	}
	if !rep.Pass {
		return fmt.Errorf("scenario %s violated %d invariant(s)", o.Scenario, countFailed(rep.Invariants))
	}
	fmt.Printf("chaos %s: survived (%d reads ok, %d writes acked, %d feed events, faults fired: %v)\n",
		o.Scenario, reads.OK, writes.Acked, feedStats.Events, rep.FaultsFired)
	return nil
}

// classifyChaosErr folds one client outcome into the tally. Tolerated:
// success, retriable rejection (429/503 after the client's own
// retries), circuit fail-fast, deadline, transport loss. Everything
// else — a 4xx on a well-formed request, an undecodable body — is a
// wrong answer.
func classifyChaosErr(err error, ok, unavailable, circuit, timeout, transport, wrong *int64, lctx context.Context) {
	switch {
	case err == nil:
		atomic.AddInt64(ok, 1)
	case errors.Is(err, egclient.ErrCircuitOpen):
		atomic.AddInt64(circuit, 1)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		atomic.AddInt64(timeout, 1)
	default:
		var re *egclient.RemoteError
		if errors.As(err, &re) {
			switch re.Code {
			case egclient.CodeBackpressure, egclient.CodeUnavailable:
				atomic.AddInt64(unavailable, 1)
			default:
				if lctx.Err() == nil { // shutdown races are not verdicts
					atomic.AddInt64(wrong, 1)
				}
			}
			return
		}
		if lctx.Err() == nil {
			atomic.AddInt64(transport, 1)
		}
	}
}

// chaosDegradedSemantics checks the survival contract at the end of the
// soak: degraded keeps reads serving and writes refused; healthy still
// accepts writes.
func chaosDegradedSemantics(degraded bool, baseURL string, client *http.Client) (bool, string) {
	resp, err := client.Get(baseURL + "/katz?top=3")
	if err != nil {
		return false, fmt.Sprintf("post-soak read: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("post-soak read: status %d, want 200", resp.StatusCode)
	}
	wresp, err := client.Post(baseURL+"/ingest/arcs", "application/x-ndjson",
		strings.NewReader(`{"op":"add","u":0,"v":1,"t":1}`))
	if err != nil {
		return false, fmt.Sprintf("post-soak write: %v", err)
	}
	wresp.Body.Close()
	if degraded {
		if wresp.StatusCode != http.StatusServiceUnavailable {
			return false, fmt.Sprintf("degraded write: status %d, want 503", wresp.StatusCode)
		}
		if wresp.Header.Get("Retry-After") == "" {
			return false, "degraded 503 without Retry-After"
		}
		return true, "degraded: reads 200, writes 503 + Retry-After"
	}
	if wresp.StatusCode != http.StatusAccepted {
		return false, fmt.Sprintf("healthy write: status %d, want 202", wresp.StatusCode)
	}
	return true, "healthy: reads 200, writes 202"
}

// chaosRecoveryInvariants recovers the WAL fault-free through both boot
// paths and returns the oracle-answer and byte-identical-recovery
// verdicts.
func chaosRecoveryInvariants(dir, walPath, ckptPath string, baseCfg evolving.RandomConfig,
	degraded bool, liveBodies map[string][]byte, liveErr error) (oracle, identical chaosInvariant) {

	oracle = chaosInvariant{Name: "no-wrong-answers-oracle"}
	identical = chaosInvariant{Name: "byte-identical-recovery"}
	base := func() (*egraph.IntEvolvingGraph, error) { return evolving.Random(baseCfg), nil }
	quiet := func(string, ...interface{}) {}

	// Boot 1: full replay, checkpoint ignored.
	r1, err := ingest.Recover(ingest.RecoverConfig{WALPath: walPath, Base: base, Logf: quiet})
	if err != nil {
		oracle.Detail = fmt.Sprintf("replay recovery: %v", err)
		identical.Detail = oracle.Detail
		return
	}
	r1.WAL.Close()
	// Boot 2: checkpoint + tail fold (falls back to replay when the
	// scenario prevented any checkpoint from landing — still valid).
	r2, err := ingest.Recover(ingest.RecoverConfig{WALPath: walPath, CheckpointPath: ckptPath, Base: base, Logf: quiet})
	if err != nil {
		oracle.Detail = fmt.Sprintf("checkpoint recovery: %v", err)
		identical.Detail = oracle.Detail
		return
	}
	defer r2.CloseCheckpoint()
	r2.WAL.Close()

	// Byte-identical: encode both graphs through the canonical
	// checkpoint writer and compare files.
	aPath, bPath := filepath.Join(dir, "cmp-a.ckpt"), filepath.Join(dir, "cmp-b.ckpt")
	if _, err := egio.WriteCheckpoint(aPath, r1.Graph, egio.CheckpointMeta{}); err != nil {
		identical.Detail = fmt.Sprintf("encode replay graph: %v", err)
	} else if _, err := egio.WriteCheckpoint(bPath, r2.Graph, egio.CheckpointMeta{}); err != nil {
		identical.Detail = fmt.Sprintf("encode checkpoint graph: %v", err)
	} else {
		a, _ := os.ReadFile(aPath)
		b, _ := os.ReadFile(bPath)
		if bytes.Equal(a, b) {
			identical.Pass = true
			identical.Detail = fmt.Sprintf("replay (%s) == checkpoint boot (%s), %d bytes", r1.Path, r2.Path, len(a))
		} else {
			identical.Detail = fmt.Sprintf("replay vs checkpoint boot differ (%d vs %d bytes)", len(a), len(b))
		}
	}

	// Oracle answers: only meaningful when the write path survived — a
	// poisoned WAL legitimately holds batches the server never folded.
	if degraded {
		oracle.Pass = true
		oracle.Detail = "skipped: write path degraded, served graph legitimately trails the WAL"
		return
	}
	if liveErr != nil {
		oracle.Detail = fmt.Sprintf("live sweep: %v", liveErr)
		return
	}
	oracleSrv := server.New(r2.Graph, server.Config{Logf: quiet})
	want, err := chaosSweepBodies(oracleSrv)
	if err != nil {
		oracle.Detail = fmt.Sprintf("oracle sweep: %v", err)
		return
	}
	var diffs []string
	for _, path := range chaosSweep {
		if !bytes.Equal(liveBodies[path], want[path]) {
			diffs = append(diffs, path)
		}
	}
	sort.Strings(diffs)
	if len(diffs) == 0 {
		oracle.Pass = true
		oracle.Detail = fmt.Sprintf("%d endpoints byte-identical to the recovered oracle", len(chaosSweep))
	} else {
		oracle.Detail = "served answers diverge from the oracle at: " + strings.Join(diffs, ", ")
	}
	return
}

// chaosRecorder is a minimal in-process ResponseWriter for the sweep.
type chaosRecorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func (r *chaosRecorder) Header() http.Header         { return r.header }
func (r *chaosRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *chaosRecorder) WriteHeader(code int)        { r.code = code }

// chaosSweepBodies replays the sweep directly against a handler and
// returns each endpoint's body bytes.
func chaosSweepBodies(h http.Handler) (map[string][]byte, error) {
	out := make(map[string][]byte, len(chaosSweep))
	for _, path := range chaosSweep {
		req, err := http.NewRequest(http.MethodGet, "http://chaos"+path, nil)
		if err != nil {
			return nil, err
		}
		rec := &chaosRecorder{code: http.StatusOK, header: make(http.Header)}
		h.ServeHTTP(rec, req)
		if rec.code != http.StatusOK {
			return nil, fmt.Errorf("sweep %s: status %d (%s)", path, rec.code, rec.body.String())
		}
		out[path] = rec.body.Bytes()
	}
	return out, nil
}

func writeChaosReport(rep *chaosReport, out string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("chaos artifact: %s\n", out)
	return nil
}

func countFailed(invs []chaosInvariant) int {
	n := 0
	for _, inv := range invs {
		if !inv.Pass {
			n++
		}
	}
	return n
}
