// Command egbfs runs the evolving-graph BFS (Algorithm 1 of Chen & Zhang
// 2016) over an edge-list file and prints the reached temporal nodes with
// their distances.
//
// Usage:
//
//	egbfs -graph g.txt -root 0@1 [-undirected] [-consecutive]
//	      [-backward] [-parallel] [-workers N] [-maxdepth K] [-path v@t]
//
// The graph file holds one "u v t [w]" line per edge ('#' comments). The
// root is node@timelabel. With -path, one shortest temporal path to the
// given target is printed instead of the full reached set.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	evolving "repro"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "edge-list file (required)")
		rootSpec    = flag.String("root", "", "root temporal node as node@timelabel (required)")
		undirected  = flag.Bool("undirected", false, "treat edges as undirected")
		consecutive = flag.Bool("consecutive", false, "consecutive-only causal edges (ablation; default all-pairs)")
		backward    = flag.Bool("backward", false, "search backward in time (provenance)")
		parallel    = flag.Bool("parallel", false, "use the parallel level-synchronous BFS")
		workers     = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		maxDepth    = flag.Int("maxdepth", 0, "stop after this many levels (0 = unbounded)")
		pathSpec    = flag.String("path", "", "print one shortest path to node@timelabel instead of the reached set")
	)
	flag.Parse()
	if *graphPath == "" || *rootSpec == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fail("open graph: %v", err)
	}
	g, err := evolving.ReadEdgeList(f, !*undirected)
	f.Close()
	if err != nil {
		fail("parse graph: %v", err)
	}

	root, err := parseTemporal(g, *rootSpec)
	if err != nil {
		fail("root: %v", err)
	}

	mode := evolving.CausalAllPairs
	if *consecutive {
		mode = evolving.CausalConsecutive
	}
	opts := evolving.Options{Mode: mode, MaxDepth: *maxDepth, TrackParents: *pathSpec != ""}
	if *backward {
		opts.Direction = evolving.Backward
	}

	var res *evolving.Result
	if *parallel {
		res, err = evolving.ParallelBFS(g, root, evolving.ParallelOptions{Options: opts, Workers: *workers})
	} else {
		res, err = evolving.BFS(g, root, opts)
	}
	if err != nil {
		fail("BFS: %v", err)
	}

	if *pathSpec != "" {
		target, err := parseTemporal(g, *pathSpec)
		if err != nil {
			fail("path target: %v", err)
		}
		p := res.PathTo(target)
		if p == nil {
			fmt.Printf("(%d@%d) is unreachable from (%d@%d)\n",
				target.Node, g.TimeLabel(int(target.Stamp)), root.Node, g.TimeLabel(int(root.Stamp)))
			os.Exit(1)
		}
		for i, tn := range p {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Printf("%d@%d", tn.Node, g.TimeLabel(int(tn.Stamp)))
		}
		fmt.Printf("   (%d hops)\n", len(p)-1)
		return
	}

	type row struct {
		tn   evolving.TemporalNode
		dist int
	}
	var rows []row
	res.Visit(func(tn evolving.TemporalNode, d int) bool {
		rows = append(rows, row{tn, d})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].dist != rows[j].dist {
			return rows[i].dist < rows[j].dist
		}
		if rows[i].tn.Stamp != rows[j].tn.Stamp {
			return rows[i].tn.Stamp < rows[j].tn.Stamp
		}
		return rows[i].tn.Node < rows[j].tn.Node
	})
	fmt.Printf("# BFS from %d@%d: %d temporal nodes reached, eccentricity %d\n",
		root.Node, g.TimeLabel(int(root.Stamp)), res.NumReached(), res.MaxDist())
	fmt.Printf("%-10s %-12s %s\n", "node", "time", "dist")
	for _, r := range rows {
		fmt.Printf("%-10d %-12d %d\n", r.tn.Node, g.TimeLabel(int(r.tn.Stamp)), r.dist)
	}
}

// parseTemporal parses "node@timelabel" against g's stamp labels.
func parseTemporal(g *evolving.Graph, s string) (evolving.TemporalNode, error) {
	parts := strings.SplitN(s, "@", 2)
	if len(parts) != 2 {
		return evolving.TemporalNode{}, fmt.Errorf("want node@timelabel, got %q", s)
	}
	node, err := strconv.ParseInt(parts[0], 10, 32)
	if err != nil {
		return evolving.TemporalNode{}, fmt.Errorf("bad node %q: %v", parts[0], err)
	}
	label, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return evolving.TemporalNode{}, fmt.Errorf("bad time label %q: %v", parts[1], err)
	}
	stamp := g.StampOf(label)
	if stamp < 0 {
		return evolving.TemporalNode{}, fmt.Errorf("no snapshot with time label %d", label)
	}
	return evolving.TemporalNode{Node: int32(node), Stamp: int32(stamp)}, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "egbfs: "+format+"\n", args...)
	os.Exit(1)
}
